/**
 * @file
 * Video trace serialization.
 *
 * The paper drives its simulator from macroblock traces captured
 * with FFmpeg + Pin; this module provides the equivalent workflow
 * for ours: a generated (or externally produced) sequence of decoded
 * frames can be written to a compact binary trace and replayed later,
 * decoupling content production from simulation and allowing traces
 * to be shared between experiments.
 *
 * Format (little-endian):
 *   header:  magic "VSTR", u32 version, u32 frame_count,
 *            u32 mabs_x, u32 mabs_y, u32 mab_dim, u32 fps
 *   frame:   u8 frame_type, f64 complexity, u64 encoded_bytes,
 *            raw pixel bytes (mabs * dim * dim * 3)
 *   trailer: u32 CRC32 over everything after the magic
 */

#ifndef VSTREAM_VIDEO_TRACE_HH
#define VSTREAM_VIDEO_TRACE_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "video/frame.hh"
#include "video/video_profile.hh"

namespace vstream
{

class SyntheticVideo;
class FaultInjector;

/** Why a trace failed to load (kNone = intact). */
enum class TraceError : std::uint8_t
{
    kNone,
    kBadMagic,        // the stream is not a vstream trace
    kBadVersion,      // format version not understood
    kBadGeometry,     // degenerate header geometry
    kTruncatedHeader, // stream ended inside the header
    kTruncatedFrame,  // stream ended inside a frame record
    kCorruptRecord,   // a frame record failed its integrity check
    kBadCrc,          // whole-trace CRC trailer mismatch
};

/** Stable name for logs and error messages. */
const char *traceErrorName(TraceError e);

/**
 * Hard limits on untrusted header/record fields.
 *
 * Traces arrive from outside the process, so the loader treats every
 * field as hostile: a header that announces absurd geometry must be
 * rejected (kBadGeometry) *before* any frame allocation — Frame
 * eagerly allocates mabs_x * mabs_y macroblocks of dim^2 * 3 bytes —
 * and record fields that would poison downstream arithmetic (NaN
 * complexity, astronomical encoded sizes, out-of-range frame types)
 * are rejected as kCorruptRecord.  The caps are far above anything a
 * real capture produces (the paper's largest config is 4K at
 * mab_dim 16) while keeping the worst-case per-frame allocation
 * bounded.
 */
constexpr std::uint32_t kMaxTraceMabsPerAxis = 4096;
constexpr std::uint32_t kMaxTraceMabDim = 128;
constexpr std::uint64_t kMaxTraceMabsPerFrame = 1u << 20;
constexpr double kMaxTraceComplexity = 1e6;
constexpr std::uint64_t kMaxTraceEncodedBytes = 1ull << 40;

/** What to do with a damaged trace. */
enum class TracePolicy : std::uint8_t
{
    /** Any damage discards every frame (the result carries only the
     * error); the caller decides whether that is fatal. */
    kFailClean,
    /** Keep every intact frame, drop damaged ones, report how many
     * were skipped. */
    kSkipFrame,
};

/** Outcome of loading a whole trace. */
struct TraceLoadResult
{
    std::vector<Frame> frames;
    TraceError error = TraceError::kNone;
    /** Frames the header announced. */
    std::uint32_t frames_expected = 0;
    /** Frames dropped under TracePolicy::kSkipFrame. */
    std::uint32_t frames_skipped = 0;

    bool ok() const { return error == TraceError::kNone; }
};

/** Writes frames to a binary trace stream. */
class TraceWriter
{
  public:
    /**
     * @param os        destination stream (binary)
     * @param profile   geometry/fps metadata recorded in the header
     * @param frame_count number of frames that will be appended
     */
    TraceWriter(std::ostream &os, const VideoProfile &profile,
                std::uint32_t frame_count);

    /** Append one frame (must match the header geometry). */
    void append(const Frame &frame);

    /** Write the integrity trailer; no appends afterwards. */
    void finish();

    std::uint32_t framesWritten() const { return frames_written_; }

  private:
    std::ostream &os_;
    std::uint32_t expected_frames_;
    std::uint32_t frames_written_ = 0;
    std::uint32_t mabs_x_;
    std::uint32_t mabs_y_;
    std::uint32_t mab_dim_;
    std::uint32_t running_crc_state_;
    bool finished_ = false;
};

/**
 * Reads frames back from a binary trace stream.
 *
 * Malformed input is recoverable: the constructor and tryNextFrame()
 * record an error() instead of aborting, and done() reports true once
 * the stream is unusable.  nextFrame() keeps the legacy fatal
 * behaviour for callers that treat damage as unrecoverable.
 */
class TraceReader
{
  public:
    /** Parses the header; on a malformed stream error() is set and
     * the reader reads as exhausted. */
    explicit TraceReader(std::istream &is);

    std::uint32_t frameCount() const { return frame_count_; }
    std::uint32_t mabsX() const { return mabs_x_; }
    std::uint32_t mabsY() const { return mabs_y_; }
    std::uint32_t mabDim() const { return mab_dim_; }
    std::uint32_t fps() const { return fps_; }

    /** First damage encountered so far (kNone when intact). */
    TraceError error() const { return error_; }

    bool done() const
    {
        return error_ != TraceError::kNone ||
               frames_read_ >= frame_count_;
    }

    /**
     * Read the next frame.
     *
     * @return nullopt on a truncated record (error() is then set).
     */
    std::optional<Frame> tryNextFrame();

    /** Read the next frame (fatal when done or corrupt). */
    Frame nextFrame();

    /**
     * After the last frame, validates the CRC trailer.
     *
     * @return true when the trace is intact (else error() is set).
     */
    bool verifyTrailer();

  private:
    std::istream &is_;
    TraceError error_ = TraceError::kNone;
    std::uint32_t frame_count_ = 0;
    std::uint32_t mabs_x_ = 0;
    std::uint32_t mabs_y_ = 0;
    std::uint32_t mab_dim_ = 0;
    std::uint32_t fps_ = 0;
    std::uint32_t frames_read_ = 0;
    std::uint32_t running_crc_state_;
};

/** Convenience: generate @p profile's video and trace it to @p os. */
void writeTrace(std::ostream &os, const VideoProfile &profile);

/**
 * Load a whole trace with recoverable error handling.
 *
 * @param policy what to do with damaged records
 * @param faults optional record-corruption source (FaultClass::
 *        kTraceCorrupt, opportunity clock = record index); injected
 *        corruption is detected as if each record carried its own
 *        check and handled per @p policy.
 */
TraceLoadResult loadTrace(std::istream &is,
                          TracePolicy policy = TracePolicy::kFailClean,
                          FaultInjector *faults = nullptr);

/**
 * Convenience: load a whole trace into memory.
 *
 * @return frames, in display order (fatal on corruption).
 */
std::vector<Frame> readTrace(std::istream &is);

} // namespace vstream

#endif // VSTREAM_VIDEO_TRACE_HH
