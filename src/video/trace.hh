/**
 * @file
 * Video trace serialization.
 *
 * The paper drives its simulator from macroblock traces captured
 * with FFmpeg + Pin; this module provides the equivalent workflow
 * for ours: a generated (or externally produced) sequence of decoded
 * frames can be written to a compact binary trace and replayed later,
 * decoupling content production from simulation and allowing traces
 * to be shared between experiments.
 *
 * Format (little-endian):
 *   header:  magic "VSTR", u32 version, u32 frame_count,
 *            u32 mabs_x, u32 mabs_y, u32 mab_dim, u32 fps
 *   frame:   u8 frame_type, f64 complexity, u64 encoded_bytes,
 *            raw pixel bytes (mabs * dim * dim * 3)
 *   trailer: u32 CRC32 over everything after the magic
 */

#ifndef VSTREAM_VIDEO_TRACE_HH
#define VSTREAM_VIDEO_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "video/frame.hh"
#include "video/video_profile.hh"

namespace vstream
{

class SyntheticVideo;

/** Writes frames to a binary trace stream. */
class TraceWriter
{
  public:
    /**
     * @param os        destination stream (binary)
     * @param profile   geometry/fps metadata recorded in the header
     * @param frame_count number of frames that will be appended
     */
    TraceWriter(std::ostream &os, const VideoProfile &profile,
                std::uint32_t frame_count);

    /** Append one frame (must match the header geometry). */
    void append(const Frame &frame);

    /** Write the integrity trailer; no appends afterwards. */
    void finish();

    std::uint32_t framesWritten() const { return frames_written_; }

  private:
    std::ostream &os_;
    std::uint32_t expected_frames_;
    std::uint32_t frames_written_ = 0;
    std::uint32_t mabs_x_;
    std::uint32_t mabs_y_;
    std::uint32_t mab_dim_;
    std::uint32_t running_crc_state_;
    bool finished_ = false;
};

/** Reads frames back from a binary trace stream. */
class TraceReader
{
  public:
    /** Parses the header; fatal on a malformed stream. */
    explicit TraceReader(std::istream &is);

    std::uint32_t frameCount() const { return frame_count_; }
    std::uint32_t mabsX() const { return mabs_x_; }
    std::uint32_t mabsY() const { return mabs_y_; }
    std::uint32_t mabDim() const { return mab_dim_; }
    std::uint32_t fps() const { return fps_; }

    bool done() const { return frames_read_ >= frame_count_; }

    /** Read the next frame (fatal when done or corrupt). */
    Frame nextFrame();

    /**
     * After the last frame, validates the CRC trailer.
     *
     * @return true when the trace is intact.
     */
    bool verifyTrailer();

  private:
    std::istream &is_;
    std::uint32_t frame_count_ = 0;
    std::uint32_t mabs_x_ = 0;
    std::uint32_t mabs_y_ = 0;
    std::uint32_t mab_dim_ = 0;
    std::uint32_t fps_ = 0;
    std::uint32_t frames_read_ = 0;
    std::uint32_t running_crc_state_;
};

/** Convenience: generate @p profile's video and trace it to @p os. */
void writeTrace(std::ostream &os, const VideoProfile &profile);

/**
 * Convenience: load a whole trace into memory.
 *
 * @return frames, in display order (fatal on corruption).
 */
std::vector<Frame> readTrace(std::istream &is);

} // namespace vstream

#endif // VSTREAM_VIDEO_TRACE_HH
