/**
 * @file
 * Offline content-similarity analysis (paper Sec. 4.1).
 *
 * Measures, with unbounded memory (no cache-capacity effects), how
 * many macroblocks of a video recur exactly within the same frame
 * (intra), within the previous N frames (inter), or not at all - the
 * Fig. 7b experiment - plus the gab-level equivalents, the digest
 * match-concentration curves of Fig. 9b, and the "optimal" savings
 * bound of Fig. 9a that a perfectly managed MACH could reach.
 */

#ifndef VSTREAM_VIDEO_SIMILARITY_HH
#define VSTREAM_VIDEO_SIMILARITY_HH

#include <cstdint>
#include <vector>

#include "video/video_profile.hh"

namespace vstream
{

/** Results of a full-video similarity sweep. */
struct SimilarityReport
{
    std::uint64_t mabs = 0;

    /** Exact-content (mab) matches. */
    std::uint64_t intra_exact = 0;
    std::uint64_t inter_exact = 0;
    std::uint64_t none_exact = 0;

    /** Gradient-block (gab) matches. */
    std::uint64_t intra_gab = 0;
    std::uint64_t inter_gab = 0;
    std::uint64_t none_gab = 0;

    /** Exact inter-matches by age (index 0 = previous frame). */
    std::vector<std::uint64_t> inter_age_hist;

    /** Shares of total matches of the top-k contents, descending. */
    std::vector<double> top_mab_shares;
    std::vector<double> top_gab_shares;

    /** Savings of an unbounded (optimal) dedup store, incl. 4 B
     * pointers and (gab) 3 B bases. */
    double optimal_mab_savings = 0.0;
    double optimal_gab_savings = 0.0;

    double intraFraction() const;
    double interFraction() const;
    double noneFraction() const;
    double gabMatchFraction() const;
};

/**
 * Analyze @p profile (optionally capped to @p max_frames frames)
 * against a copy window of @p window frames.
 */
SimilarityReport analyzeSimilarity(const VideoProfile &profile,
                                   std::uint32_t max_frames = 0,
                                   std::uint32_t window = 16,
                                   std::size_t top_k = 32);

} // namespace vstream

#endif // VSTREAM_VIDEO_SIMILARITY_HH
