#include "video/video_profile.hh"

#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "video/pixel.hh"

namespace vstream
{

std::uint64_t
VideoProfile::decodedFrameBytes() const
{
    return static_cast<std::uint64_t>(width) * height * kBytesPerPixel;
}

std::uint64_t
VideoProfile::framePeriodTicks() const
{
    return sim_clock::s / fps;
}

void
VideoProfile::validate() const
{
    if (mab_dim == 0 || width % mab_dim != 0 || height % mab_dim != 0) {
        vs_fatal("frame dimensions must be multiples of mab_dim (",
                 width, "x", height, ", mab_dim=", mab_dim, ")");
    }
    if (fps == 0 || frame_count == 0) {
        vs_fatal("fps and frame_count must be non-zero");
    }
    const double p =
        intra_match_rate + inter_match_rate + gradient_shift_rate;
    if (p > 1.0) {
        vs_fatal("similarity rates sum to ", p, " > 1 for ", key);
    }
    if (inter_window == 0) {
        vs_fatal("inter_window must be >= 1");
    }
    if (mean_decode_frac <= 0.0 || complexity_sigma < 0.0) {
        vs_fatal("bad complexity parameters for ", key);
    }
    if (color_palette == 0) {
        vs_fatal("color_palette must be >= 1");
    }
}

} // namespace vstream
