#include "video/frame.hh"

#include <algorithm>

#include "hash/crc.hh"
#include "sim/logging.hh"

namespace vstream
{

Frame::Frame(std::uint64_t index, FrameType type, std::uint32_t mabs_x,
             std::uint32_t mabs_y, std::uint32_t mab_dim)
    : index_(index), type_(type), mabs_x_(mabs_x), mabs_y_(mabs_y),
      mab_dim_(mab_dim),
      mabs_(static_cast<std::size_t>(mabs_x) * mabs_y, Macroblock(mab_dim)),
      origins_(static_cast<std::size_t>(mabs_x) * mabs_y,
               MabOrigin::kUnique)
{
    vs_assert(mabs_x_ > 0 && mabs_y_ > 0, "empty frame");
}

// vstream:hot
// vstream:allow(no-hotpath-alloc) geometry changes only on the first
// call (or a profile switch); the steady-state path reuses storage
void
Frame::reinit(std::uint64_t index, FrameType type, std::uint32_t mabs_x,
              std::uint32_t mabs_y, std::uint32_t mab_dim)
{
    vs_assert(mabs_x > 0 && mabs_y > 0, "empty frame");
    index_ = index;
    type_ = type;
    if (mabs_x_ != mabs_x || mabs_y_ != mabs_y || mab_dim_ != mab_dim) {
        const std::size_t count =
            static_cast<std::size_t>(mabs_x) * mabs_y;
        mabs_.assign(count, Macroblock(mab_dim));
        origins_.assign(count, MabOrigin::kUnique);
        mabs_x_ = mabs_x;
        mabs_y_ = mabs_y;
        mab_dim_ = mab_dim;
    } else {
        std::fill(origins_.begin(), origins_.end(), MabOrigin::kUnique);
    }
    complexity_ = 1.0;
    encoded_bytes_ = 0;
}

std::uint64_t
Frame::decodedBytes() const
{
    return static_cast<std::uint64_t>(mabCount()) * mab_dim_ * mab_dim_ *
           kBytesPerPixel;
}

const Macroblock &
Frame::mab(std::uint32_t i) const
{
    return mabs_.at(i);
}

Macroblock &
Frame::mab(std::uint32_t i)
{
    return mabs_.at(i);
}

const Macroblock &
Frame::mabAt(std::uint32_t x, std::uint32_t y) const
{
    vs_assert(x < mabs_x_ && y < mabs_y_, "mab coordinates out of range");
    return mabs_[static_cast<std::size_t>(y) * mabs_x_ + x];
}

std::uint32_t
Frame::contentChecksum() const
{
    Crc32 crc;
    for (const auto &m : mabs_) {
        crc.update(m.bytes().data(), m.bytes().size());
    }
    return crc.digest();
}

} // namespace vstream
