/**
 * @file
 * Memory request types shared by the DRAM model and its clients.
 */

#ifndef VSTREAM_MEM_MEM_REQUEST_HH
#define VSTREAM_MEM_MEM_REQUEST_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace vstream
{

/** Simulated physical address. */
using Addr = std::uint64_t;

/** Direction of a memory operation. */
enum class MemOp
{
    kRead,
    kWrite,
};

/** SoC agents that generate DRAM traffic in the video flow. */
enum class Requester
{
    kVideoDecoder,
    kDisplayController,
    kStreamBuffer,
    kOther,
};

/** Short name for a requester ("vd", "dc", ...). */
std::string requesterName(Requester r);

/** A single client-level memory request (any size/alignment). */
struct MemRequest
{
    Addr addr = 0;
    std::uint32_t size = 0;
    MemOp op = MemOp::kRead;
    Requester requester = Requester::kOther;
};

/** Result of servicing one request. */
struct MemResult
{
    /** Tick at which the last burst of data completes. */
    Tick finish_tick = 0;
    /** DRAM bursts issued on behalf of the request. */
    std::uint32_t bursts = 0;
    /** Row-buffer hits among those bursts. */
    std::uint32_t row_hits = 0;
    /** Row activations performed. */
    std::uint32_t activations = 0;
};

inline std::string
requesterName(Requester r)
{
    switch (r) {
      case Requester::kVideoDecoder:
        return "vd";
      case Requester::kDisplayController:
        return "dc";
      case Requester::kStreamBuffer:
        return "net";
      case Requester::kOther:
        return "other";
    }
    return "?";
}

} // namespace vstream

#endif // VSTREAM_MEM_MEM_REQUEST_HH
