#include "mem/memory_system.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

MemorySystem::MemorySystem(std::string name, EventQueue *queue,
                           const DramConfig &cfg)
    : SimObject(std::move(name), queue), ctrl_(cfg)
{
}

MemResult
MemorySystem::access(const MemRequest &req, Tick now)
{
    ++request_count_;
    return ctrl_.access(req, now);
}

MemResult
MemorySystem::read(Addr addr, std::uint32_t size, Requester r, Tick now)
{
    return access(MemRequest{addr, size, MemOp::kRead, r}, now);
}

MemResult
MemorySystem::write(Addr addr, std::uint32_t size, Requester r, Tick now)
{
    return access(MemRequest{addr, size, MemOp::kWrite, r}, now);
}

Addr
MemorySystem::allocate(std::uint64_t bytes, const std::string &label)
{
    constexpr std::uint64_t kAlign = 64;
    const std::uint64_t aligned = (bytes + kAlign - 1) / kAlign * kAlign;
    if (next_free_ + aligned > config().capacity_bytes) {
        vs_fatal("out of simulated DRAM allocating ", aligned,
                 " bytes for '", label, "' (", next_free_, " of ",
                 config().capacity_bytes, " used)");
    }
    const Addr base = next_free_;
    next_free_ += aligned;
    peak_allocated_ = std::max(peak_allocated_, next_free_);
    return base;
}

double
MemorySystem::backgroundEnergy(Tick span) const
{
    return ctrl_.energy().backgroundEnergy(span);
}

std::uint64_t
MemorySystem::bytesTransferred() const
{
    const DramActivityCounts c = ctrl_.energy().totalCounts();
    return c.bytes_read + c.bytes_written;
}

double
MemorySystem::avgBandwidthMBps(Tick span) const
{
    if (span == 0) {
        return 0.0;
    }
    return static_cast<double>(bytesTransferred()) / 1e6 /
           ticksToSeconds(span);
}

double
MemorySystem::peakBandwidthMBps() const
{
    // One burst of bytesPerBurst() occupies the data bus for
    // burstTime() ticks; all channels transfer in parallel.
    const DramConfig &cfg = config();
    const double per_channel =
        static_cast<double>(cfg.bytesPerBurst()) / 1e6 /
        ticksToSeconds(cfg.burstTime());
    return per_channel * cfg.channels;
}

void
MemorySystem::resetStats()
{
    ctrl_.energy().reset();
    ctrl_.resetFaultStats();
    request_count_ = 0;
}

void
MemorySystem::regStats(StatsRegistry &r)
{
    r.addCallback(name() + ".requests", "requests serviced", [this] {
        return static_cast<double>(request_count_);
    });
    // next_free_ is the bump-allocator watermark, not a counter:
    // resetting it would hand out live addresses again.
    // vstream:allow(stats-hygiene) architectural gauge, never reset
    r.addCallback(name() + ".allocatedBytes",
                  "bytes handed out by the bump allocator", [this] {
                      return static_cast<double>(next_free_);
                  });
    r.addCallback(name() + ".dram.retries",
                  "bursts re-issued after an injected timeout", [this] {
                      return static_cast<double>(ctrl_.retryCount());
                  });
    r.addCallback(name() + ".dram.abandoned",
                  "bursts abandoned after exhausting retries", [this] {
                      return static_cast<double>(
                          ctrl_.abandonedCount());
                  });
    r.addCallback(name() + ".dram.backoffTicks",
                  "ticks spent backing off before burst re-issues",
                  [this] {
                      return static_cast<double>(
                          ctrl_.backoffTicks());
                  });
    ctrl_.energy().regStats(r, name() + ".");
}

} // namespace vstream
