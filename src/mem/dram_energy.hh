/**
 * @file
 * DRAM energy bookkeeping.
 *
 * Splits memory energy into the categories the paper plots in
 * Figs. 5b and 11: Act/Pre, read/write burst, and background
 * (standby + refresh), attributable per requester.
 */

#ifndef VSTREAM_MEM_DRAM_ENERGY_HH
#define VSTREAM_MEM_DRAM_ENERGY_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "mem/dram_config.hh"
#include "mem/mem_request.hh"

namespace vstream
{

class StatsRegistry;

/** Raw command counts for one requester. */
struct DramActivityCounts
{
    std::uint64_t activations = 0;
    std::uint64_t precharges = 0;
    std::uint64_t read_bursts = 0;
    std::uint64_t write_bursts = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;

    DramActivityCounts &operator+=(const DramActivityCounts &o);
};

/** Energy ledger covering all requesters plus background power. */
class DramEnergy
{
  public:
    explicit DramEnergy(const DramConfig &cfg);

    /** Account one activation for @p r. */
    void recordActivation(Requester r);
    /** Account one precharge for @p r. */
    void recordPrecharge(Requester r);
    /** Account one data burst for @p r. */
    void recordBurst(Requester r, MemOp op, std::uint32_t bytes);
    /** Account one row-buffer hit for @p r. */
    void recordRowHit(Requester r);

    /** Counts for one requester. */
    const DramActivityCounts &counts(Requester r) const;
    /** Counts summed over all requesters. */
    DramActivityCounts totalCounts() const;

    /** Act/Pre energy in joules (per requester / total). */
    double actPreEnergy(Requester r) const;
    double actPreEnergyTotal() const;

    /** Burst (data transfer) energy in joules. */
    double burstEnergy(Requester r) const;
    double burstEnergyTotal() const;

    /** Background energy across a window of @p span ticks. */
    double backgroundEnergy(Tick span) const;

    /** Everything except background, joules. */
    double dynamicEnergyTotal() const;

    void reset();

    /** Stats-reset alias for reset(): every registered counter and
     * derived energy restarts from zero. */
    void resetStats() { reset(); }

    /** Register per-requester counts/energies under @p prefix. */
    void regStats(StatsRegistry &r, const std::string &prefix) const;

  private:
    static std::size_t index(Requester r);

    // By value: a reference member dangles when built from a
    // temporary config (ASan stack-use-after-scope).
    DramConfig cfg_;
    std::array<DramActivityCounts, 4> per_requester_{};
};

} // namespace vstream

#endif // VSTREAM_MEM_DRAM_ENERGY_HH
