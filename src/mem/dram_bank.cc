#include "mem/dram_bank.hh"

namespace vstream
{

bool
DramBank::expireRow(Tick now, Tick timeout)
{
    if (!row_open_) {
        return false;
    }
    if (now <= last_access_ || now - last_access_ <= timeout) {
        return false;
    }
    // The controller closed the row at last_access_ + timeout; by
    // `now` the precharge has long completed.
    row_open_ = false;
    return true;
}

void
DramBank::activate(std::uint64_t row, Tick when)
{
    row_open_ = true;
    open_row_ = row;
    opened_at_ = when;
    last_access_ = when;
    ready_at_ = when;
}

void
DramBank::precharge(Tick ready)
{
    row_open_ = false;
    ready_at_ = ready;
}

void
DramBank::touch(Tick when)
{
    if (when > last_access_) {
        last_access_ = when;
    }
    if (when > ready_at_) {
        ready_at_ = when;
    }
}

void
DramBank::reset()
{
    row_open_ = false;
    open_row_ = 0;
    ready_at_ = 0;
    last_access_ = 0;
    opened_at_ = 0;
}

} // namespace vstream
