#include "mem/dram_controller.hh"

#include <algorithm>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace vstream
{

DramController::DramController(const DramConfig &cfg)
    : cfg_(cfg), map_(cfg_), energy_(cfg_)
{
    cfg_.validate();
    channels_.reserve(cfg_.channels);
    for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
        channels_.emplace_back(cfg_.ranks_per_channel, cfg_.banks_per_rank);
    }
    write_queues_.resize(static_cast<std::size_t>(cfg_.channels) *
                         cfg_.ranks_per_channel * cfg_.banks_per_rank);
    next_refresh_.assign(cfg_.channels, cfg_.t_refi);
}

std::size_t
DramController::bankIndex(const DramCoord &coord) const
{
    return (static_cast<std::size_t>(coord.channel) *
                cfg_.ranks_per_channel +
            coord.rank) *
               cfg_.banks_per_rank +
           coord.bank;
}

Tick
DramController::applyRefresh(std::uint32_t channel, Tick t)
{
    if (!cfg_.refresh_enabled) {
        return t;
    }
    Tick &next = next_refresh_[channel];
    if (t < next) {
        return t;
    }
    // Jump to the refresh epoch containing t; refreshes the device
    // performed while idle did not block anyone.
    const std::uint64_t missed = (t - next) / cfg_.t_refi;
    next += missed * cfg_.t_refi;
    ++refreshes_;
    if (t < next + cfg_.t_rfc) {
        t = next + cfg_.t_rfc;
    }
    next += cfg_.t_refi;
    return t;
}

Tick
DramController::accessBurst(const DramCoord &coord, MemOp op, Requester r,
                            Tick now, bool &row_hit, bool &activated)
{
    DramChannel &channel = channels_[coord.channel];
    DramBank &bank = channel.bank(coord.rank, coord.bank);

    now = applyRefresh(coord.channel, now);

    // Starvation bound: rows idle past the timeout were closed by the
    // controller in the meantime.  The precharge is attributed to the
    // requester whose access left the row open.
    if (bank.expireRow(now, cfg_.row_open_timeout)) {
        energy_.recordPrecharge(r);
    }

    Tick t = std::max(now, bank.readyAt());
    row_hit = false;
    activated = false;

    if (bank.rowOpen() && bank.openRow() == coord.row) {
        row_hit = true;
    } else {
        if (bank.rowOpen()) {
            // Conflict: close the old row first (tRAS honored).
            const Tick pre_start =
                std::max(t, bank.openedAt() + cfg_.t_ras);
            t = pre_start + cfg_.t_rp;
            bank.precharge(t);
            energy_.recordPrecharge(r);
        }
        t += cfg_.t_rcd;
        bank.activate(coord.row, t);
        energy_.recordActivation(r);
        activated = true;
    }

    // Column access: CAS latency then the data burst on the shared
    // bus.  Writes use the same envelope (write latency differences
    // are second-order for this study).
    const Tick data_start = t + cfg_.t_cl;
    const Tick finish = channel.occupyBus(data_start, cfg_.burstTime());
    bank.touch(finish);

    // Closed-page: auto-precharge after the access; the next access
    // to this bank activates unconditionally (tRP off the critical
    // path, the precharge energy booked with the activation pair).
    if (cfg_.page_policy == PagePolicy::kClosedPage) {
        bank.precharge(finish);
    }

    energy_.recordBurst(r, op, cfg_.bytesPerBurst());
    if (row_hit) {
        energy_.recordRowHit(r);
    }
    return finish;
}

Tick
DramController::burstWithRetry(const DramCoord &coord, MemOp op,
                               Requester r, Tick now, bool &row_hit,
                               bool &activated)
{
    Tick finish = accessBurst(coord, op, r, now, row_hit, activated);
    if (faults_ == nullptr) {
        return finish;
    }
    // A timed-out burst backs off (capped exponential, jittered so
    // colliding retries from different banks spread out) and is then
    // re-issued, so every retry pays the backoff wait plus the full
    // burst latency and is charged to the energy ledger like any
    // other access.
    const std::uint32_t limit = faults_->config().dram_retry_limit;
    std::uint32_t attempts = 0;
    while (faults_->shouldInject(FaultClass::kDramTimeout, finish)) {
        if (attempts >= limit) {
            // Out of budget: give up on this burst and let the
            // access complete; content-verification layers above
            // (verify_on_hit, display verify) absorb the damage.
            ++abandoned_;
            faults_->noteAbandoned(FaultClass::kDramTimeout);
            break;
        }
        ++attempts;
        ++retries_;
        const Tick delay = backoffDelay(attempts);
        backoff_ticks_ += delay;
        bool retry_hit = false;
        bool retry_act = false;
        finish = accessBurst(coord, op, r, finish + delay, retry_hit,
                             retry_act);
        faults_->noteRecovered(FaultClass::kDramTimeout);
    }
    return finish;
}

void
DramController::setFaultInjector(FaultInjector *faults)
{
    faults_ = faults;
    jitter_state_ = faults != nullptr
                        ? faults->config().seed ^ 0xd2a0b0ffULL
                        : 0;
}

Tick
DramController::backoffDelay(std::uint32_t attempt)
{
    const FaultConfig &fc = faults_->config();
    if (fc.dram_backoff_base == 0) {
        return 0;
    }
    // min(cap, base << (attempt - 1)), shift guarded against
    // overflowing past the cap.
    Tick delay = fc.dram_backoff_base;
    for (std::uint32_t k = 1; k < attempt; ++k) {
        if (delay >= fc.dram_backoff_cap / 2) {
            delay = fc.dram_backoff_cap;
            break;
        }
        delay *= 2;
    }
    delay = std::min(delay, fc.dram_backoff_cap);
    if (fc.dram_backoff_jitter > 0.0) {
        // 53-bit uniform in [0, 1) from the dedicated SplitMix64
        // stream; jitter only ever lengthens the wait.
        const double u =
            static_cast<double>(splitMix64(jitter_state_) >> 11) *
            0x1.0p-53;
        delay += static_cast<Tick>(static_cast<double>(delay) *
                                   fc.dram_backoff_jitter * u);
    }
    return delay;
}

void
DramController::drainBank(std::size_t bank_idx, Tick now)
{
    auto &queue = write_queues_[bank_idx];
    if (queue.empty()) {
        return;
    }

    // Row-sorted service order: one activation per distinct row in
    // the batch instead of one per scattered write.
    std::stable_sort(queue.begin(), queue.end(),
                     [](const PendingWrite &a, const PendingWrite &b) {
                         return a.coord.row < b.coord.row;
                     });
    // All burst/Act/Pre energy and bank timing for posted writes is
    // charged here, at drain time.
    bool row_hit = false;
    bool activated = false;
    Tick t = now;
    for (const PendingWrite &w : queue) {
        t = burstWithRetry(w.coord, MemOp::kWrite, w.requester, t,
                           row_hit, activated);
    }
    queue.clear();
}

MemResult
DramController::access(const MemRequest &req, Tick now)
{
    vs_assert(req.size > 0, "zero-size memory request");

    const std::uint32_t burst_bytes = cfg_.bytesPerBurst();
    const Addr first = req.addr / burst_bytes * burst_bytes;
    const Addr last = (req.addr + req.size - 1) / burst_bytes * burst_bytes;

    const bool queue_writes =
        cfg_.write_queue_depth > 0 && req.op == MemOp::kWrite;

    MemResult result;
    Tick finish = now;
    for (Addr a = first;; a += burst_bytes) {
        const DramCoord coord = map_.decompose(a);
        ++result.bursts;

        if (queue_writes) {
            // Posted write: enqueue and drain in batches.
            auto &queue = write_queues_[bankIndex(coord)];
            queue.push_back(PendingWrite{coord, req.requester});
            if (queue.size() >= cfg_.write_queue_depth) {
                drainBank(bankIndex(coord), now);
            }
        } else {
            bool row_hit = false;
            bool activated = false;
            const Tick burst_finish = burstWithRetry(
                coord, req.op, req.requester, now, row_hit, activated);
            finish = std::max(finish, burst_finish);
            if (row_hit) {
                ++result.row_hits;
            }
            if (activated) {
                ++result.activations;
            }
        }
        if (a == last) {
            break;
        }
    }
    result.finish_tick = finish;
    return result;
}

void
DramController::flushWrites(Tick now)
{
    for (std::size_t i = 0; i < write_queues_.size(); ++i) {
        drainBank(i, now);
    }
}

std::uint64_t
DramController::pendingWrites() const
{
    std::uint64_t n = 0;
    for (const auto &q : write_queues_) {
        n += q.size();
    }
    return n;
}

void
DramController::reset()
{
    for (auto &c : channels_) {
        c.reset();
    }
    for (auto &q : write_queues_) {
        q.clear();
    }
    next_refresh_.assign(cfg_.channels, cfg_.t_refi);
    refreshes_ = 0;
    retries_ = 0;
    abandoned_ = 0;
    energy_.reset();
}

} // namespace vstream
