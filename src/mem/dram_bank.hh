/**
 * @file
 * Per-bank row-buffer state machine.
 *
 * Tracks the open row, the tick the bank becomes usable, and the tick
 * of the last column access.  The controller consults the
 * starvation/timeout bound here: a row left idle past the configured
 * row_open_timeout is considered precharged (the real controller
 * would have closed it to serve other traffic), which is the exact
 * mechanism that makes low-frequency decoding pay extra Act/Pre
 * energy (paper Fig. 5a).
 */

#ifndef VSTREAM_MEM_DRAM_BANK_HH
#define VSTREAM_MEM_DRAM_BANK_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace vstream
{

/** State of one DRAM bank. */
class DramBank
{
  public:
    DramBank() = default;

    /** Is a row currently latched in the row buffer? */
    bool rowOpen() const { return row_open_; }

    /** The open row (valid only when rowOpen()). */
    std::uint64_t openRow() const { return open_row_; }

    /** Earliest tick the bank can accept a new command. */
    Tick readyAt() const { return ready_at_; }

    /** Tick of the most recent column access to the open row. */
    Tick lastAccess() const { return last_access_; }

    /** Tick the current row was activated. */
    Tick openedAt() const { return opened_at_; }

    /**
     * Apply the timeout policy at time @p now: if the open row has
     * been idle longer than @p timeout, close it.
     *
     * @return true if a timeout precharge occurred (caller accounts
     *         the precharge energy; the precharge happened in the
     *         past, so it does not delay @p now).
     */
    bool expireRow(Tick now, Tick timeout);

    /** Latch @p row at @p when (after tRCD has been charged). */
    void activate(std::uint64_t row, Tick when);

    /** Close the row buffer; bank busy until @p ready. */
    void precharge(Tick ready);

    /** Record a column access completing at @p when. */
    void touch(Tick when);

    /** Reset to power-up state. */
    void reset();

  private:
    bool row_open_ = false;
    std::uint64_t open_row_ = 0;
    Tick ready_at_ = 0;
    Tick last_access_ = 0;
    Tick opened_at_ = 0;
};

} // namespace vstream

#endif // VSTREAM_MEM_DRAM_BANK_HH
