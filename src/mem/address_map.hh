/**
 * @file
 * RoRaBaCoCh physical-address interleaving (paper Table 2).
 *
 * From most- to least-significant bits a physical address decomposes
 * as Row : Rank : Bank : Column : Channel, with the burst offset
 * below the channel bits.  Channel interleaving at burst granularity
 * spreads streaming traffic across both LPDDR3 channels.
 */

#ifndef VSTREAM_MEM_ADDRESS_MAP_HH
#define VSTREAM_MEM_ADDRESS_MAP_HH

#include <array>
#include <cstdint>

#include "mem/dram_config.hh"
#include "mem/mem_request.hh"

namespace vstream
{

/** Fully decomposed DRAM coordinates of an address. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint32_t column = 0;

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
               row == o.row && column == o.column;
    }
};

/** Maps addresses to DRAM coordinates under a configurable
 * interleaving order (paper default: RoRaBaCoCh). */
class AddressMap
{
  public:
    explicit AddressMap(const DramConfig &cfg);

    /** Decompose @p addr (wraps modulo capacity). */
    DramCoord decompose(Addr addr) const;

    /** Recompose coordinates back to the canonical address. */
    Addr compose(const DramCoord &coord) const;

    /** Columns (bursts) per row. */
    std::uint32_t columnsPerRow() const { return columns_per_row_; }

    AddrMapOrder order() const { return order_; }

  private:
    enum class Field
    {
        kChannel,
        kColumn,
        kBank,
        kRank,
    };

    static std::uint32_t log2OfPow2(std::uint64_t v);
    std::array<Field, 4> fieldOrder() const;
    std::uint32_t fieldBits(Field f) const;

    std::uint32_t burst_shift_;
    std::uint32_t channel_bits_;
    std::uint32_t column_bits_;
    std::uint32_t bank_bits_;
    std::uint32_t rank_bits_;
    std::uint64_t capacity_;
    std::uint32_t columns_per_row_;
    AddrMapOrder order_ = AddrMapOrder::kRoRaBaCoCh;
};

} // namespace vstream

#endif // VSTREAM_MEM_ADDRESS_MAP_HH
