/**
 * @file
 * LPDDR3 device/controller configuration (paper Table 2).
 *
 * Defaults model the Micron 253-ball dual-channel LPDDR3 part the
 * paper cites: 2 GB, 2 channels, 1 rank/channel, 8 banks/rank,
 * 800 MHz (1.6 GT/s), tCL/tRP/tRCD = 12/18/18 ns, RoRaBaCoCh address
 * interleaving.
 */

#ifndef VSTREAM_MEM_DRAM_CONFIG_HH
#define VSTREAM_MEM_DRAM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace vstream
{

/**
 * Physical-address interleaving order, named MSB-to-LSB.
 *
 * The paper's platform uses RoRaBaCoCh (channel bits lowest: bursts
 * alternate channels).  The alternatives trade channel parallelism
 * against row locality and bank-level parallelism, and are compared
 * by `bench_ablation_mapping`.
 */
enum class AddrMapOrder
{
    kRoRaBaCoCh, // row:rank:bank:column:channel (paper Table 2)
    kRoRaBaChCo, // channel above column: a whole row per channel
    kRoRaCoBaCh, // bank below column: bursts spread over banks
};

std::string addrMapOrderName(AddrMapOrder order);

/** Row-buffer management policy. */
enum class PagePolicy
{
    /** Keep rows open until a conflict or the starvation bound - the
     * paper's platform; racing exploits exactly this. */
    kOpenPage,
    /** Auto-precharge after every column access: every access pays
     * an activation, but conflicts never pay tRP on the critical
     * path.  Removes the frequency sensitivity racing relies on. */
    kClosedPage,
};

std::string pagePolicyName(PagePolicy policy);

/** Static DRAM organization, timing, and energy parameters. */
struct DramConfig
{
    // --- organization -------------------------------------------------
    std::uint32_t channels = 2;
    std::uint32_t ranks_per_channel = 1;
    std::uint32_t banks_per_rank = 8;
    /** Row size per bank, bytes (open-page granularity). */
    std::uint32_t row_bytes = 2048;
    /** Device data-bus width in bits (LPDDR3 x32). */
    std::uint32_t bus_width_bits = 32;
    /** Burst length in beats. */
    std::uint32_t burst_length = 8;
    /** Total capacity in bytes (2 GB). */
    std::uint64_t capacity_bytes = 2ULL << 30;
    /** Address interleaving (paper Table 2: RoRaBaCoCh). */
    AddrMapOrder map_order = AddrMapOrder::kRoRaBaCoCh;
    /** Row-buffer policy (the paper's platform is open-page). */
    PagePolicy page_policy = PagePolicy::kOpenPage;

    // --- timing (I/O clock 800 MHz => tCK = 1.25 ns) -------------------
    Tick t_ck = 1250;                       // ps
    Tick t_cl = 12 * sim_clock::ns;         // CAS latency
    Tick t_rp = 18 * sim_clock::ns;         // precharge
    Tick t_rcd = 18 * sim_clock::ns;        // activate-to-CAS
    Tick t_ras = 42 * sim_clock::ns;        // activate-to-precharge min
    Tick t_wr = 15 * sim_clock::ns;         // write recovery
    /**
     * Starvation bound: maximum time a row may stay open without a
     * new access before the controller precharges it to serve other
     * requesters (Sec. 3.2's Act/Pre argument hinges on this).
     */
    Tick row_open_timeout = 280 * sim_clock::ns;

    /**
     * Per-bank write-queue depth, in bursts.  Posted writes are held
     * and drained in row-sorted batches (when the bank's row is
     * reopened, when the queue fills, or on an explicit flush), the
     * way real controllers recover row locality for scattered write
     * streams.  0 = writes issue immediately (the calibrated default
     * used for all paper reproductions; `bench_ablation_write_queue`
     * quantifies the scheduler's effect).
     */
    std::uint32_t write_queue_depth = 0;

    /**
     * All-bank refresh modelling.  When enabled, each channel blocks
     * for t_rfc every t_refi; disabled by default (refresh energy is
     * folded into background_watts either way).
     */
    bool refresh_enabled = false;
    Tick t_refi = 3900 * sim_clock::ns;
    Tick t_rfc = 130 * sim_clock::ns;

    // --- energy -------------------------------------------------------
    /** Energy of one activate+precharge pair, picojoules. */
    double e_act_pre_pj = 4000.0;           // 4 nJ
    /** Energy of one read burst (32 B), picojoules. */
    double e_read_burst_pj = 4200.0;        // ~16 pJ/bit I/O
    /** Energy of one write burst (32 B), picojoules. */
    double e_write_burst_pj = 4500.0;
    /** Background (standby + refresh) power, watts. */
    double background_watts = 0.040;

    // --- derived ------------------------------------------------------
    /** Bytes transferred by one burst. */
    std::uint32_t bytesPerBurst() const;
    /** Data-bus occupancy of one burst (DDR: burst_length/2 clocks). */
    Tick burstTime() const;
    /** Rows per bank implied by capacity and geometry. */
    std::uint64_t rowsPerBank() const;

    /** Abort with a message if the configuration is inconsistent. */
    void validate() const;
};

} // namespace vstream

#endif // VSTREAM_MEM_DRAM_CONFIG_HH
