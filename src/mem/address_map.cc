#include "mem/address_map.hh"

#include "sim/logging.hh"

namespace vstream
{

std::uint32_t
AddressMap::log2OfPow2(std::uint64_t v)
{
    vs_assert(v != 0 && (v & (v - 1)) == 0, "value not a power of two");
    std::uint32_t bits = 0;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

AddressMap::AddressMap(const DramConfig &cfg)
{
    cfg.validate();
    burst_shift_ = log2OfPow2(cfg.bytesPerBurst());
    channel_bits_ = log2OfPow2(cfg.channels);
    columns_per_row_ = cfg.row_bytes / cfg.bytesPerBurst();
    column_bits_ = log2OfPow2(columns_per_row_);
    bank_bits_ = log2OfPow2(cfg.banks_per_rank);
    rank_bits_ = cfg.ranks_per_channel > 1
                     ? log2OfPow2(cfg.ranks_per_channel)
                     : 0;
    capacity_ = cfg.capacity_bytes;
    order_ = cfg.map_order;
}

std::array<AddressMap::Field, 4>
AddressMap::fieldOrder() const
{
    // LSB-to-MSB order of the sub-row fields; the row always takes
    // the remaining high bits.
    switch (order_) {
      case AddrMapOrder::kRoRaBaCoCh:
        return {Field::kChannel, Field::kColumn, Field::kBank,
                Field::kRank};
      case AddrMapOrder::kRoRaBaChCo:
        return {Field::kColumn, Field::kChannel, Field::kBank,
                Field::kRank};
      case AddrMapOrder::kRoRaCoBaCh:
        return {Field::kChannel, Field::kBank, Field::kColumn,
                Field::kRank};
    }
    vs_panic("unreachable address-map order");
}

std::uint32_t
AddressMap::fieldBits(Field f) const
{
    switch (f) {
      case Field::kChannel:
        return channel_bits_;
      case Field::kColumn:
        return column_bits_;
      case Field::kBank:
        return bank_bits_;
      case Field::kRank:
        return rank_bits_;
    }
    return 0;
}

DramCoord
AddressMap::decompose(Addr addr) const
{
    Addr a = (addr % capacity_) >> burst_shift_;

    DramCoord coord;
    for (Field f : fieldOrder()) {
        const std::uint32_t bits = fieldBits(f);
        if (bits == 0) {
            continue;
        }
        const auto value =
            static_cast<std::uint32_t>(a & ((1u << bits) - 1));
        a >>= bits;
        switch (f) {
          case Field::kChannel:
            coord.channel = value;
            break;
          case Field::kColumn:
            coord.column = value;
            break;
          case Field::kBank:
            coord.bank = value;
            break;
          case Field::kRank:
            coord.rank = value;
            break;
        }
    }
    coord.row = a;
    return coord;
}

Addr
AddressMap::compose(const DramCoord &coord) const
{
    Addr a = coord.row;
    const auto order = fieldOrder();
    // Re-insert the fields MSB-to-LSB (reverse of decompose).
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const std::uint32_t bits = fieldBits(*it);
        if (bits == 0) {
            continue;
        }
        std::uint32_t value = 0;
        switch (*it) {
          case Field::kChannel:
            value = coord.channel;
            break;
          case Field::kColumn:
            value = coord.column;
            break;
          case Field::kBank:
            value = coord.bank;
            break;
          case Field::kRank:
            value = coord.rank;
            break;
        }
        a = (a << bits) | value;
    }
    return a << burst_shift_;
}

} // namespace vstream
