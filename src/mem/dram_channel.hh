/**
 * @file
 * One LPDDR3 channel: a set of banks sharing a data bus.
 */

#ifndef VSTREAM_MEM_DRAM_CHANNEL_HH
#define VSTREAM_MEM_DRAM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "mem/dram_bank.hh"
#include "sim/ticks.hh"

namespace vstream
{

/** Banks plus shared-bus occupancy for one channel. */
class DramChannel
{
  public:
    DramChannel(std::uint32_t ranks, std::uint32_t banks_per_rank);

    /** Bank object for (rank, bank). */
    DramBank &bank(std::uint32_t rank, std::uint32_t bank_idx);
    const DramBank &bank(std::uint32_t rank, std::uint32_t bank_idx) const;

    /** Earliest tick the data bus is free. */
    Tick busFreeAt() const { return bus_free_at_; }

    /**
     * Occupy the bus for @p duration starting no earlier than
     * @p earliest.
     *
     * @return the tick the transfer completes.
     */
    Tick occupyBus(Tick earliest, Tick duration);

    std::uint32_t bankCount() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    /** Reset all banks and the bus. */
    void reset();

  private:
    std::uint32_t banks_per_rank_;
    std::vector<DramBank> banks_;
    Tick bus_free_at_ = 0;
};

} // namespace vstream

#endif // VSTREAM_MEM_DRAM_CHANNEL_HH
