#include "mem/dram_config.hh"

#include "sim/logging.hh"

namespace vstream
{

std::string
addrMapOrderName(AddrMapOrder order)
{
    switch (order) {
      case AddrMapOrder::kRoRaBaCoCh:
        return "RoRaBaCoCh";
      case AddrMapOrder::kRoRaBaChCo:
        return "RoRaBaChCo";
      case AddrMapOrder::kRoRaCoBaCh:
        return "RoRaCoBaCh";
    }
    return "?";
}

std::string
pagePolicyName(PagePolicy policy)
{
    switch (policy) {
      case PagePolicy::kOpenPage:
        return "open-page";
      case PagePolicy::kClosedPage:
        return "closed-page";
    }
    return "?";
}

std::uint32_t
DramConfig::bytesPerBurst() const
{
    return bus_width_bits / 8 * burst_length;
}

Tick
DramConfig::burstTime() const
{
    // Double data rate: burst_length beats take burst_length/2 clocks.
    return t_ck * (burst_length / 2);
}

std::uint64_t
DramConfig::rowsPerBank() const
{
    const std::uint64_t banks_total =
        static_cast<std::uint64_t>(channels) * ranks_per_channel *
        banks_per_rank;
    return capacity_bytes / (banks_total * row_bytes);
}

void
DramConfig::validate() const
{
    if (channels == 0 || ranks_per_channel == 0 || banks_per_rank == 0) {
        vs_fatal("DRAM geometry must be non-zero");
    }
    if ((row_bytes & (row_bytes - 1)) != 0) {
        vs_fatal("row_bytes must be a power of two");
    }
    if ((burst_length & (burst_length - 1)) != 0 || burst_length < 2) {
        vs_fatal("burst_length must be a power of two >= 2");
    }
    if ((channels & (channels - 1)) != 0) {
        vs_fatal("channel count must be a power of two");
    }
    if ((banks_per_rank & (banks_per_rank - 1)) != 0) {
        vs_fatal("banks_per_rank must be a power of two");
    }
    if (bytesPerBurst() == 0 || bytesPerBurst() > row_bytes) {
        vs_fatal("burst size incompatible with row size");
    }
    if (rowsPerBank() == 0) {
        vs_fatal("capacity too small for geometry");
    }
}

} // namespace vstream
