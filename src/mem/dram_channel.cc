#include "mem/dram_channel.hh"

#include "sim/logging.hh"

namespace vstream
{

DramChannel::DramChannel(std::uint32_t ranks, std::uint32_t banks_per_rank)
    : banks_per_rank_(banks_per_rank),
      banks_(static_cast<std::size_t>(ranks) * banks_per_rank)
{
    vs_assert(!banks_.empty(), "channel with zero banks");
}

DramBank &
DramChannel::bank(std::uint32_t rank, std::uint32_t bank_idx)
{
    const std::size_t idx =
        static_cast<std::size_t>(rank) * banks_per_rank_ + bank_idx;
    vs_assert(idx < banks_.size(), "bank index out of range");
    return banks_[idx];
}

const DramBank &
DramChannel::bank(std::uint32_t rank, std::uint32_t bank_idx) const
{
    const std::size_t idx =
        static_cast<std::size_t>(rank) * banks_per_rank_ + bank_idx;
    vs_assert(idx < banks_.size(), "bank index out of range");
    return banks_[idx];
}

Tick
DramChannel::occupyBus(Tick earliest, Tick duration)
{
    const Tick start = std::max(earliest, bus_free_at_);
    bus_free_at_ = start + duration;
    return bus_free_at_;
}

void
DramChannel::reset()
{
    for (auto &b : banks_) {
        b.reset();
    }
    bus_free_at_ = 0;
}

} // namespace vstream
