/**
 * @file
 * Open-page DRAM controller (transaction-level timing).
 *
 * Requests are serviced burst-by-burst against per-bank row-buffer
 * state.  The model is transaction-level rather than cycle-level: a
 * request arrives with its issue tick, the controller walks the
 * affected banks/columns, charges tRP/tRCD/tCL/tBurst as applicable,
 * arbitrates the per-channel data bus, applies the row-open timeout
 * (starvation bound), and returns the completion tick plus row-hit
 * statistics.  This is the granularity at which the paper's
 * Act/Pre-vs-burst energy argument (Sec. 3.2, Fig. 5) operates.
 */

#ifndef VSTREAM_MEM_DRAM_CONTROLLER_HH
#define VSTREAM_MEM_DRAM_CONTROLLER_HH

#include <vector>

#include "mem/address_map.hh"
#include "mem/dram_channel.hh"
#include "mem/dram_config.hh"
#include "mem/dram_energy.hh"
#include "mem/mem_request.hh"

namespace vstream
{

class FaultInjector;

/** The banked timing model behind MemorySystem. */
class DramController
{
  public:
    explicit DramController(const DramConfig &cfg);

    /**
     * Service @p req whose first command may issue at @p now.
     *
     * Splits the request into bursts, walks bank state, and records
     * energy events in the ledger.  With a non-zero
     * write_queue_depth, write bursts are posted into per-bank
     * queues and drained in row-sorted batches.
     *
     * @return completion tick and per-request burst statistics.
     */
    MemResult access(const MemRequest &req, Tick now);

    /** Drain every pending posted write (end of simulation). */
    void flushWrites(Tick now);

    /** Posted writes currently queued. */
    std::uint64_t pendingWrites() const;

    /** All-bank refreshes performed (refresh_enabled only). */
    std::uint64_t refreshCount() const { return refreshes_; }

    /**
     * Arm transient-fault injection (class kDramTimeout); nullptr
     * disables it.  A timed-out burst is re-issued up to the
     * injector's dram_retry_limit; each retry re-runs the full burst
     * (latency and energy are charged again).  Past the limit the
     * burst is abandoned: the access completes with stale data and
     * the caller's verification layers absorb the damage.
     */
    void setFaultInjector(FaultInjector *faults);

    /** Bursts re-issued after an injected timeout. */
    std::uint64_t retryCount() const { return retries_; }
    /** Bursts abandoned after exhausting the retry budget. */
    std::uint64_t abandonedCount() const { return abandoned_; }
    /** Total ticks spent backing off before burst re-issues. */
    Tick backoffTicks() const { return backoff_ticks_; }
    /** Zero the retry/abandon counters (stats reset, not state). */
    void resetFaultStats()
    {
        retries_ = 0;
        abandoned_ = 0;
        backoff_ticks_ = 0;
    }

    const DramConfig &config() const { return cfg_; }
    const AddressMap &addressMap() const { return map_; }
    DramEnergy &energy() { return energy_; }
    const DramEnergy &energy() const { return energy_; }

    /** Reset bank/bus state and the energy ledger. */
    void reset();

  private:
    struct PendingWrite
    {
        DramCoord coord;
        Requester requester;
    };

    /** Service one burst at @p coord; returns its completion tick. */
    Tick accessBurst(const DramCoord &coord, MemOp op, Requester r,
                     Tick now, bool &row_hit, bool &activated);

    /** accessBurst plus the bounded-retry loop for injected
     * timeouts. */
    Tick burstWithRetry(const DramCoord &coord, MemOp op, Requester r,
                        Tick now, bool &row_hit, bool &activated);

    /** Stall @p t over any refresh window it lands in. */
    Tick applyRefresh(std::uint32_t channel, Tick t);

    /** Global bank index of @p coord. */
    std::size_t bankIndex(const DramCoord &coord) const;

    /** Drain one bank's posted writes in row-sorted order. */
    void drainBank(std::size_t bank_idx, Tick now);

    DramConfig cfg_;
    AddressMap map_;
    DramEnergy energy_;
    std::vector<DramChannel> channels_;
    std::vector<std::vector<PendingWrite>> write_queues_;
    std::vector<Tick> next_refresh_;
    std::uint64_t refreshes_ = 0;
    /** Backoff delay before the @p attempt-th re-issue (capped
     * exponential plus deterministic jitter). */
    Tick backoffDelay(std::uint32_t attempt);

    FaultInjector *faults_ = nullptr;
    std::uint64_t retries_ = 0;
    std::uint64_t abandoned_ = 0;
    Tick backoff_ticks_ = 0;
    /** SplitMix64 state behind the backoff jitter (seeded from the
     * fault schedule so delays are reproducible). */
    std::uint64_t jitter_state_ = 0;
};

} // namespace vstream

#endif // VSTREAM_MEM_DRAM_CONTROLLER_HH
