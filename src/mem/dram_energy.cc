#include "mem/dram_energy.hh"

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

DramActivityCounts &
DramActivityCounts::operator+=(const DramActivityCounts &o)
{
    activations += o.activations;
    precharges += o.precharges;
    read_bursts += o.read_bursts;
    write_bursts += o.write_bursts;
    row_hits += o.row_hits;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
}

DramEnergy::DramEnergy(const DramConfig &cfg) : cfg_(cfg) {}

std::size_t
DramEnergy::index(Requester r)
{
    return static_cast<std::size_t>(r);
}

void
DramEnergy::recordActivation(Requester r)
{
    ++per_requester_[index(r)].activations;
}

void
DramEnergy::recordPrecharge(Requester r)
{
    ++per_requester_[index(r)].precharges;
}

void
DramEnergy::recordBurst(Requester r, MemOp op, std::uint32_t bytes)
{
    auto &c = per_requester_[index(r)];
    if (op == MemOp::kRead) {
        ++c.read_bursts;
        c.bytes_read += bytes;
    } else {
        ++c.write_bursts;
        c.bytes_written += bytes;
    }
}

void
DramEnergy::recordRowHit(Requester r)
{
    ++per_requester_[index(r)].row_hits;
}

const DramActivityCounts &
DramEnergy::counts(Requester r) const
{
    return per_requester_[index(r)];
}

DramActivityCounts
DramEnergy::totalCounts() const
{
    DramActivityCounts total;
    for (const auto &c : per_requester_) {
        total += c;
    }
    return total;
}

double
DramEnergy::actPreEnergy(Requester r) const
{
    const auto &c = per_requester_[index(r)];
    // Energy is booked per act/pre *pair*; an activation implies a
    // matching (possibly future) precharge, so count activations.
    return static_cast<double>(c.activations) * cfg_.e_act_pre_pj * 1e-12;
}

double
DramEnergy::actPreEnergyTotal() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < per_requester_.size(); ++i) {
        sum += actPreEnergy(static_cast<Requester>(i));
    }
    return sum;
}

double
DramEnergy::burstEnergy(Requester r) const
{
    const auto &c = per_requester_[index(r)];
    return (static_cast<double>(c.read_bursts) * cfg_.e_read_burst_pj +
            static_cast<double>(c.write_bursts) * cfg_.e_write_burst_pj) *
           1e-12;
}

double
DramEnergy::burstEnergyTotal() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < per_requester_.size(); ++i) {
        sum += burstEnergy(static_cast<Requester>(i));
    }
    return sum;
}

double
DramEnergy::backgroundEnergy(Tick span) const
{
    return cfg_.background_watts * ticksToSeconds(span);
}

double
DramEnergy::dynamicEnergyTotal() const
{
    return actPreEnergyTotal() + burstEnergyTotal();
}

void
DramEnergy::reset()
{
    for (auto &c : per_requester_) {
        c = DramActivityCounts{};
    }
}

void
DramEnergy::regStats(StatsRegistry &reg, const std::string &prefix) const
{
    for (std::size_t i = 0; i < per_requester_.size(); ++i) {
        const auto r = static_cast<Requester>(i);
        const DramActivityCounts *c = &per_requester_[i];
        const std::string p =
            prefix + "dram." + requesterName(r) + ".";
        reg.addCallback(p + "activations", "row activations", [c] {
            return static_cast<double>(c->activations);
        });
        reg.addCallback(p + "rowHits", "row-buffer hits", [c] {
            return static_cast<double>(c->row_hits);
        });
        reg.addCallback(p + "bytesRead", "data burst bytes read", [c] {
            return static_cast<double>(c->bytes_read);
        });
        reg.addCallback(p + "bytesWritten", "data burst bytes written",
                        [c] {
                            return static_cast<double>(c->bytes_written);
                        });
        reg.addCallback(p + "actPreEnergyJ",
                        "activate/precharge energy, joules",
                        [this, r] { return actPreEnergy(r); });
        reg.addCallback(p + "burstEnergyJ",
                        "data transfer energy, joules",
                        [this, r] { return burstEnergy(r); });
    }
}

} // namespace vstream
