/**
 * @file
 * Memory-system front end.
 *
 * Owns the DRAM controller, hands out address regions (frame buffers,
 * encoded-stream buffers, MACH metadata dumps), and exposes a simple
 * access() interface to the IP models.  All statistics needed by the
 * paper's figures (row hits, Act/Pre counts, burst counts, energy per
 * requester) are collected here.
 */

#ifndef VSTREAM_MEM_MEMORY_SYSTEM_HH
#define VSTREAM_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "mem/dram_controller.hh"
#include "mem/mem_request.hh"
#include "sim/sim_object.hh"

namespace vstream
{

/** Top-level simulated memory. */
class MemorySystem : public SimObject
{
  public:
    MemorySystem(std::string name, EventQueue *queue,
                 const DramConfig &cfg);

    /**
     * Service a request issued at @p now.
     *
     * @return timing and row-hit outcome; also updates the ledger.
     */
    MemResult access(const MemRequest &req, Tick now);

    /** Shorthand: read @p size bytes at @p addr. */
    MemResult read(Addr addr, std::uint32_t size, Requester r, Tick now);

    /** Shorthand: write @p size bytes at @p addr. */
    MemResult write(Addr addr, std::uint32_t size, Requester r, Tick now);

    /**
     * Allocate a contiguous region of @p bytes (64 B aligned).
     *
     * This is a simulation-level bump allocator; regions are never
     * freed individually (frame buffers are recycled by their
     * owners).
     */
    Addr allocate(std::uint64_t bytes, const std::string &label);

    /** Bytes handed out so far. */
    std::uint64_t allocatedBytes() const { return next_free_; }

    /** High-water mark of simultaneously allocated bytes. */
    std::uint64_t peakAllocatedBytes() const { return peak_allocated_; }

    const DramConfig &config() const { return ctrl_.config(); }
    DramController &controller() { return ctrl_; }
    const DramEnergy &energy() const { return ctrl_.energy(); }

    /** Drain any posted writes (see DramConfig::write_queue_depth). */
    void flushWrites(Tick now) { ctrl_.flushWrites(now); }

    /** Arm DRAM transient-fault injection (nullptr disables it). */
    void setFaultInjector(FaultInjector *faults)
    {
        ctrl_.setFaultInjector(faults);
    }

    /** Background energy over a window of @p span ticks, joules. */
    double backgroundEnergy(Tick span) const;

    /** Total requests serviced. */
    std::uint64_t requestCount() const { return request_count_; }

    // --- bandwidth accounting (serve-layer admission control) ---------

    /** Bytes moved over the DRAM data bus so far (reads + writes). */
    std::uint64_t bytesTransferred() const;

    /** Average data-bus bandwidth over @p span ticks, MB/s. */
    double avgBandwidthMBps(Tick span) const;

    /** Theoretical peak data-bus bandwidth of this part, MB/s. */
    double peakBandwidthMBps() const;

    void resetStats() override;
    void regStats(StatsRegistry &r) override;

  private:
    DramController ctrl_;
    std::uint64_t next_free_ = 0;
    std::uint64_t peak_allocated_ = 0;
    std::uint64_t request_count_ = 0;
};

} // namespace vstream

#endif // VSTREAM_MEM_MEMORY_SYSTEM_HH
