/**
 * @file
 * Fleet placer: global admission, least-loaded routing, rebalancing,
 * and fault-tolerant recovery.
 *
 * The Placer drives an ArrivalSchedule through N Shards on one
 * virtual serving timeline.  The division of labour is what makes
 * the fleet's JSON byte-identical at any --shards count:
 *
 *  - *Admission is global.*  One budget pool (ServeConfig: DRAM
 *    bandwidth, frame-buffer bytes, max_active), one strict-FIFO
 *    wait queue with an optional deadline, one whale-rejection rule -
 *    evaluated on the shared timeline exactly as SessionManager does
 *    for a single shard.  Nothing about admit/queue/reject depends
 *    on the shard count.
 *
 *  - *Placement is advisory.*  Each shard owns a slice of the global
 *    budget as a placement weight; arrivals route to the least-
 *    loaded shard (strict-less compare, so the lowest id wins
 *    ties), and a periodic rebalance re-weights slices toward
 *    observed load.  Placement picks *where* a session's stats are
 *    folded, never *whether* or *when* it runs - and because shard
 *    snapshots merge exactly (sim/stats_snapshot.hh), the merged
 *    fleet view is placement-independent.
 *
 *  - *Sessions are hermetic.*  Each arrival is rehearsed on its own
 *    private substrate (serve/session.hh, rehearseSession) in
 *    parallelMap blocks; its outcome stays resident only while the
 *    session is in flight and is folded into the routed shard when
 *    it finishes.  Memory is O(shards + active + waiting), not
 *    O(sessions).
 *
 *  - *Faults are recoverable.*  With a ChaosConfig (serve/chaos.hh)
 *    the Placer periodically checkpoints each shard's durable state
 *    as a ShardSnapshot and journals finishes between checkpoints.
 *    A shard crash restores the last checkpoint, deterministically
 *    replays the journal (the factory must be a pure function of
 *    the arrival for this - both shipped harnesses are), and fails
 *    in-flight sessions over to surviving shards under the same
 *    global budget.  Because merge order cannot reach the bytes, a
 *    recovered run's fleet report equals the unfailed run's, modulo
 *    the explicit `recovery` block.  With chaos off the whole layer
 *    is inert and the report is byte-identical to the pre-chaos
 *    stack.
 *
 * Event ordering at equal ticks is pinned: finish < queue-timeout <
 * checkpoint < chaos < rebalance - so budget freed at tick T is
 * visible to everything else at T, an admission wins a tie with the
 * queue deadline, and a checkpoint at the crash tick loses nothing.
 *
 * docs/SERVING.md walks the serving flow, docs/ROBUSTNESS.md the
 * fault tolerance; tests/test_shard.cc pins shard-count and jobs
 * invariance, tests/test_chaos.cc pins recovery equality.
 */

#ifndef VSTREAM_SERVE_PLACER_HH
#define VSTREAM_SERVE_PLACER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "serve/arrivals.hh"
#include "serve/chaos.hh"
#include "serve/session_manager.hh"
#include "serve/shard.hh"
#include "serve/shared_mach.hh"
#include "serve/snapshot.hh"

namespace vstream
{

/** Fleet-level configuration: global budgets + shard layout. */
struct FleetConfig
{
    /** Global admission budgets (shared semantics with the
     * single-shard SessionManager). */
    ServeConfig serve;
    /** Shard count; slices start as an equal split of the global
     * budget.  Any value >= 1 yields byte-identical fleet JSON. */
    std::uint32_t shards = 1;
    /** Rehearsal worker threads (parallelMap fan-out). */
    unsigned jobs = 1;
    /** Rehearse arrivals in blocks of this many sessions, bounding
     * in-flight outcomes independently of the fleet size. */
    std::uint32_t rehearse_block = 256;
    /** Re-weight shard slices every this many ticks on the virtual
     * timeline (0 = never).  Placement-only, hence stats-neutral. */
    Tick rebalance_period = 0;
    /** Fault injection + checkpoint/recovery policy; default is
     * inert (serve/chaos.hh). */
    ChaosConfig chaos;
    /** Shared MACH dedup tier policy; default is off, and off means
     * the tier is never constructed and fleet JSON is byte-identical
     * to pre-dedup builds (serve/shared_mach.hh). */
    DedupConfig dedup;

    void validate() const;
};

/** Builds the SessionConfig for one arrival.  The Placer overwrites
 * id and leave_after from the ArrivalEvent afterwards; everything
 * else (including stats_group, typically derived from the event's
 * mix) is the factory's to set.  With crash rules configured the
 * factory must be *pure* - crash recovery replays journaled arrivals
 * through it and the replayed config must match the original. */
using SessionFactory =
    std::function<SessionConfig(const ArrivalEvent &)>;

/** Global admission + least-loaded routing across Shards. */
class Placer
{
  public:
    Placer(FleetConfig cfg, SessionFactory factory);

    Placer(const Placer &) = delete;
    Placer &operator=(const Placer &) = delete;

    /**
     * Drive @p arrivals (non-decreasing ticks) to completion:
     * rehearse in blocks, admit/queue/reject on the virtual
     * timeline, fold outcomes into shards as sessions finish, drain
     * the wait queue as budget frees.  Inject flash crowds first
     * with withFlashCrowds - floods are offered load, so they enter
     * through the schedule, not behind the Placer's back.  Callable
     * once.
     */
    void run(const std::vector<ArrivalEvent> &arrivals);

    /** Merge of every shard's snapshot: the fleet-wide view.  Exact
     * arithmetic makes it independent of shard count, placement and
     * merge order. */
    StatsSnapshot fleetSnapshot() const;

    const std::vector<Shard> &shards() const { return shards_; }

    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t queuedTotal() const { return queued_; }
    std::uint64_t rejected() const { return rejected_; }
    /** Slice re-weights performed.  Diagnostic only - never emitted
     * in fleet JSON, since placement detail is outside the
     * shard-count-invariance contract. */
    std::uint64_t rebalances() const { return rebalances_; }
    /** Peak concurrently-active sessions on the timeline. */
    std::uint64_t peakActive() const { return peak_active_; }
    /** Peak wait-queue depth (bounds pending-outcome memory). */
    std::uint64_t peakWaiting() const { return peak_waiting_; }
    /** Tick of the last session finish. */
    Tick endTick() const { return cur_tick_; }

    // --- fault tolerance ------------------------------------------------

    /** The recovery ledger; all-zero on a clean run. */
    const RecoveryTotals &recovery() const { return recovery_; }
    /** Current fleet health (Healthy unless chaos degraded it). */
    FleetHealth fleetHealth() const { return ladder_.state(); }
    const FleetLadder &fleetLadder() const { return ladder_; }
    /** Checkpoint rounds taken (each covers every shard). */
    std::uint64_t checkpointsTaken() const
    {
        return checkpoints_taken_;
    }

    /** The shared dedup tier (nullptr when dedup is off).  Fault
     * domains map 1:1 onto shards. */
    const SharedMachTier *dedupTier() const { return dedup_.get(); }

  private:
    /** A rehearsed session waiting for budget. */
    struct Pending
    {
        RehearsedSession reh;
        /** The arrival it came from (journaled on finish). */
        ArrivalEvent arrival;
        double bw_mbps = 0.0;
        std::uint64_t fb_bytes = 0;
        /** Tick it entered the wait queue (deadline base). */
        Tick enqueue = 0;
    };

    /** Heap entry for one admitted session; everything else lives
     * in live_ so failover can re-home it. */
    struct Finish
    {
        Tick tick = 0;
        std::uint64_t seq = 0;

        /** Min-heap order: earliest (tick, seq) first. */
        bool
        operator>(const Finish &o) const
        {
            if (tick != o.tick) {
                return tick > o.tick;
            }
            return seq > o.seq;
        }
    };

    /** Resident state of one in-flight session.  The outcome is
     * rebased at admit and folded into its shard at finish, so a
     * crash before the finish cleanly unwinds it. */
    struct Live
    {
        SessionOutcome outcome;
        ArrivalEvent arrival;
        Tick start = 0;
        std::uint32_t shard = 0;
        double bw_mbps = 0.0;
        std::uint64_t fb_bytes = 0;
        /** Settled dedup accounting (admit time); folded into the
         * shard at finish. */
        DedupSettle dedup_settle;
        /** Tier refcounts this session holds until it finishes. */
        DedupLease dedup_lease;
    };

    /** One finish recorded since the shard's last checkpoint;
     * replayed through the (pure) factory on crash recovery. */
    struct JournalEntry
    {
        ArrivalEvent arrival;
        Tick start = 0;
        /** Settled dedup accounting as of the original admission.
         * Journaled, not recomputed: settlement depends on the tier
         * state at admit time, which replay cannot reconstruct. */
        DedupSettle dedup_settle;
        /** The session's block log, for rebuilding tier content
         * deterministically (stats-suppressed) after a crash. */
        DedupRecord dedup_blocks;
    };

    /** A chaos rule expanded onto the timeline (brownouts become a
     * start/end pair). */
    struct ChaosEvent
    {
        enum class Kind : std::uint8_t
        {
            kCrash = 0,
            kBrownoutStart,
            kBrownoutEnd,
        };

        Tick tick = 0;
        Kind kind = Kind::kCrash;
        std::uint32_t shard = 0;
        double factor = 1.0;
    };

    bool fits(double bw_mbps, std::uint64_t fb_bytes) const;
    bool couldEverFit(double bw_mbps, std::uint64_t fb_bytes) const;

    /** Process finishes, queue deadlines, checkpoints, chaos events
     * and rebalance points up to @p t; leaves cur_tick_ == t. */
    void advanceTo(Tick t);

    /** Pop the earliest finish: release budget, fold the outcome
     * into its shard, journal it, drain the queue. */
    void finishOne();

    /** Expire the wait-queue front past its admission deadline. */
    void expireFront();
    /** Deadline of the wait-queue front (maxTick when unbounded). */
    Tick frontDeadline() const;

    /** Route + reserve @p p starting at @p start; the outcome goes
     * resident until the finish event folds it in. */
    void admit(Pending &&p, Tick start);

    void submitRehearsed(Pending &&p);
    void drainWaiting();
    std::uint32_t pickShard() const;
    void rebalance();

    void takeCheckpoint(std::uint32_t shard);
    void takeAllCheckpoints();
    void applyChaos(const ChaosEvent &ev);
    void crashShard(std::uint32_t shard);
    /** Least-loaded shard excluding @p crashed (failover target). */
    std::uint32_t pickSurvivor(std::uint32_t crashed) const;
    void updateFleetHealth();

    FleetConfig cfg_;
    SessionFactory factory_;
    /** Cross-session shared state; only ever touched on the serial
     * timeline (admit/finish/crash), never by rehearsal workers. */
    // vstream:shard_local
    std::unique_ptr<SharedMachTier> dedup_;
    // vstream:shard_local
    std::vector<Shard> shards_;
    // vstream:shard_local
    std::priority_queue<Finish, std::vector<Finish>,
                        std::greater<Finish>>
        active_;
    /** In-flight sessions by admission seq.  Ordered map: crash
     * failover iterates it, and that order must be deterministic. */
    std::map<std::uint64_t, Live> live_;
    /** Sessions waiting for budget; the front expires once it has
     * queued past ServeConfig::queue_deadline. */
    std::deque<Pending> waiting_;

    /** Per-shard finish journals since the last checkpoint (only
     * populated when crash rules exist). */
    std::vector<std::vector<JournalEntry>> journals_;
    /** Per-shard serialized ShardSnapshot documents - kept as wire
     * bytes so every restore exercises the real format. */
    std::vector<std::vector<std::uint8_t>> checkpoints_;
    /** Active brownouts per shard (overlaps nest). */
    std::vector<std::uint32_t> brownout_depth_;
    /** Chaos rules expanded and sorted by tick. */
    std::vector<ChaosEvent> chaos_events_;
    std::size_t next_chaos_ = 0;

    Tick cur_tick_ = 0;
    Tick next_rebalance_ = 0;
    Tick next_checkpoint_ = maxTick;
    std::uint64_t next_seq_ = 0;
    double bw_reserved_ = 0.0;
    std::uint64_t fb_reserved_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t queued_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t rebalances_ = 0;
    std::uint64_t peak_active_ = 0;
    std::uint64_t peak_waiting_ = 0;
    std::uint64_t checkpoints_taken_ = 0;
    bool journaling_ = false;
    bool checkpointing_ = false;
    RecoveryTotals recovery_;
    FleetLadder ladder_;
    bool ran_ = false;
};

} // namespace vstream

#endif // VSTREAM_SERVE_PLACER_HH
