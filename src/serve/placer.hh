/**
 * @file
 * Fleet placer: global admission, least-loaded routing, rebalancing.
 *
 * The Placer drives an ArrivalSchedule through N Shards on one
 * virtual serving timeline.  The division of labour is what makes
 * the fleet's JSON byte-identical at any --shards count:
 *
 *  - *Admission is global.*  One budget pool (ServeConfig: DRAM
 *    bandwidth, frame-buffer bytes, max_active), one strict-FIFO
 *    wait queue, one whale-rejection rule - evaluated on the shared
 *    timeline exactly as SessionManager does for a single shard.
 *    Nothing about admit/queue/reject depends on the shard count.
 *
 *  - *Placement is advisory.*  Each shard owns a slice of the global
 *    budget as a placement weight; arrivals route to the least-
 *    loaded shard (strict-less compare, so the lowest id wins
 *    ties), and a periodic rebalance re-weights slices toward
 *    observed load.  Placement picks *where* a session's stats are
 *    folded, never *whether* or *when* it runs - and because shard
 *    snapshots merge exactly (sim/stats_snapshot.hh), the merged
 *    fleet view is placement-independent.
 *
 *  - *Sessions are hermetic.*  Each arrival is rehearsed on its own
 *    private substrate (serve/session.hh, rehearseSession) in
 *    parallelMap blocks, then its outcome is absorbed into the
 *    routed shard at admission time and discarded; only a (finish
 *    tick, seq, shard, budget) heap entry stays resident.  Memory is
 *    O(shards + active + waiting), not O(sessions).
 *
 * docs/SERVING.md walks through the whole flow; tests/test_shard.cc
 * pins shard-count and jobs invariance plus rebalance neutrality.
 */

#ifndef VSTREAM_SERVE_PLACER_HH
#define VSTREAM_SERVE_PLACER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "serve/arrivals.hh"
#include "serve/session_manager.hh"
#include "serve/shard.hh"

namespace vstream
{

/** Fleet-level configuration: global budgets + shard layout. */
struct FleetConfig
{
    /** Global admission budgets (shared semantics with the
     * single-shard SessionManager). */
    ServeConfig serve;
    /** Shard count; slices start as an equal split of the global
     * budget.  Any value >= 1 yields byte-identical fleet JSON. */
    std::uint32_t shards = 1;
    /** Rehearsal worker threads (parallelMap fan-out). */
    unsigned jobs = 1;
    /** Rehearse arrivals in blocks of this many sessions, bounding
     * in-flight outcomes independently of the fleet size. */
    std::uint32_t rehearse_block = 256;
    /** Re-weight shard slices every this many ticks on the virtual
     * timeline (0 = never).  Placement-only, hence stats-neutral. */
    Tick rebalance_period = 0;

    void validate() const;
};

/** Builds the SessionConfig for one arrival.  The Placer overwrites
 * id and leave_after from the ArrivalEvent afterwards; everything
 * else (including stats_group, typically derived from the event's
 * mix) is the factory's to set. */
using SessionFactory =
    std::function<SessionConfig(const ArrivalEvent &)>;

/** Global admission + least-loaded routing across Shards. */
class Placer
{
  public:
    Placer(FleetConfig cfg, SessionFactory factory);

    Placer(const Placer &) = delete;
    Placer &operator=(const Placer &) = delete;

    /**
     * Drive @p arrivals (non-decreasing ticks) to completion:
     * rehearse in blocks, admit/queue/reject on the virtual
     * timeline, fold outcomes into shards, drain the wait queue as
     * budget frees.  Callable once.
     */
    void run(const std::vector<ArrivalEvent> &arrivals);

    /** Merge of every shard's snapshot: the fleet-wide view.  Exact
     * arithmetic makes it independent of shard count, placement and
     * merge order. */
    StatsSnapshot fleetSnapshot() const;

    const std::vector<Shard> &shards() const { return shards_; }

    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t queuedTotal() const { return queued_; }
    std::uint64_t rejected() const { return rejected_; }
    /** Slice re-weights performed.  Diagnostic only - never emitted
     * in fleet JSON, since placement detail is outside the
     * shard-count-invariance contract. */
    std::uint64_t rebalances() const { return rebalances_; }
    /** Peak concurrently-active sessions on the timeline. */
    std::uint64_t peakActive() const { return peak_active_; }
    /** Peak wait-queue depth (bounds pending-outcome memory). */
    std::uint64_t peakWaiting() const { return peak_waiting_; }
    /** Tick of the last session finish. */
    Tick endTick() const { return cur_tick_; }

  private:
    /** A rehearsed session waiting for budget. */
    struct Pending
    {
        RehearsedSession reh;
        double bw_mbps = 0.0;
        std::uint64_t fb_bytes = 0;
    };

    /** Resident footprint of one admitted session. */
    struct Finish
    {
        Tick tick = 0;
        std::uint64_t seq = 0;
        std::uint32_t shard = 0;
        double bw_mbps = 0.0;
        std::uint64_t fb_bytes = 0;

        /** Min-heap order: earliest (tick, seq) first. */
        bool
        operator>(const Finish &o) const
        {
            if (tick != o.tick) {
                return tick > o.tick;
            }
            return seq > o.seq;
        }
    };

    bool fits(double bw_mbps, std::uint64_t fb_bytes) const;
    bool couldEverFit(double bw_mbps, std::uint64_t fb_bytes) const;

    /** Process finishes (and rebalance points) up to @p t, draining
     * the wait queue as budget frees; leaves cur_tick_ == t. */
    void advanceTo(Tick t);

    /** Route + reserve + absorb @p p starting at @p start. */
    void admit(Pending &&p, Tick start);

    void submitRehearsed(Pending &&p);
    void drainWaiting();
    std::uint32_t pickShard() const;
    void rebalance();

    FleetConfig cfg_;
    SessionFactory factory_;
    // vstream:shard_local
    std::vector<Shard> shards_;
    // vstream:shard_local
    std::priority_queue<Finish, std::vector<Finish>,
                        std::greater<Finish>>
        active_;
    // vstream:shard_local
    std::deque<Pending> waiting_;

    Tick cur_tick_ = 0;
    Tick next_rebalance_ = 0;
    std::uint64_t next_seq_ = 0;
    double bw_reserved_ = 0.0;
    std::uint64_t fb_reserved_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t queued_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t rebalances_ = 0;
    std::uint64_t peak_active_ = 0;
    std::uint64_t peak_waiting_ = 0;
    bool ran_ = false;
};

} // namespace vstream

#endif // VSTREAM_SERVE_PLACER_HH
