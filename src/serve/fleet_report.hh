/**
 * @file
 * Canonical fleet-mode "vstream-soak-1" JSON document.
 *
 * bench_soak --shards and vstream_serve --shards emit the same
 * document shape through this one writer, so docs/FORMATS.md has a
 * single source of truth to describe and the CI shard-smoke diff
 * compares like with like.  Two fields are deliberately *absent*:
 * the shard count and the job count.  Both are execution detail
 * outside the byte-identity contract - the same fleet must produce
 * the same bytes however it is partitioned.
 */

#ifndef VSTREAM_SERVE_FLEET_REPORT_HH
#define VSTREAM_SERVE_FLEET_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "serve/placer.hh"

namespace vstream
{

/**
 * Write the fleet-mode vstream-soak-1 document for a completed
 * @p placer run to @p os.
 *
 * @p bench names the emitting tool; @p sessions is the arrival
 * count (admitted + rejected); @p wall_clock_seconds is the only
 * non-deterministic field; @p invariant_failures is the emitter's
 * self-check count (0 = all held).
 */
void writeFleetReport(std::ostream &os, const Placer &placer,
                      const std::string &bench,
                      std::uint64_t sessions,
                      double wall_clock_seconds,
                      std::uint64_t invariant_failures);

} // namespace vstream

#endif // VSTREAM_SERVE_FLEET_REPORT_HH
