#include "serve/chaos.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "sim/logging.hh"

namespace vstream
{

const char *
fleetFaultClassName(FleetFaultClass c)
{
    switch (c) {
      case FleetFaultClass::kShardCrash:
        return "crash";
      case FleetFaultClass::kShardBrownout:
        return "brownout";
      case FleetFaultClass::kFlashCrowd:
        return "flood";
    }
    return "?";
}

namespace
{

/** Largest double that still static_casts into a Tick; see
 * sim/fault_injector.cc for the full rationale (2^63, one
 * comparison, false for NaN/inf). */
constexpr double kMaxTickDouble = 9223372036854775808.0; // 2^63

/** Parse "250ms" / "1.5s" / "400us" / bare "250" (ms) into ticks. */
bool
tryParseTicks(const std::string &value, Tick &out, std::string &error)
{
    char *end = nullptr;
    const double x = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) {
        error = "bad time '" + value + "'";
        return false;
    }
    const std::string unit(end);
    double scale = static_cast<double>(sim_clock::ms);
    if (unit == "ps") {
        scale = static_cast<double>(sim_clock::ps);
    } else if (unit == "ns") {
        scale = static_cast<double>(sim_clock::ns);
    } else if (unit == "us") {
        scale = static_cast<double>(sim_clock::us);
    } else if (unit == "ms" || unit.empty()) {
        scale = static_cast<double>(sim_clock::ms);
    } else if (unit == "s") {
        scale = static_cast<double>(sim_clock::s);
    } else {
        error = "unknown time unit '" + unit + "'";
        return false;
    }
    const double ticks = x * scale;
    if (!(x >= 0.0) || !(ticks < kMaxTickDouble)) {
        error = "time '" + value + "' is not a finite tick count";
        return false;
    }
    out = static_cast<Tick>(ticks);
    return true;
}

/** Plain digits only; see tryParseCount in sim/fault_injector.cc for
 * why strtoull alone is a trap on untrusted input. */
bool
tryParseCount(const std::string &value, std::uint64_t &out,
              std::string &error)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
        error = "bad count '" + value + "'";
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE || end != value.c_str() + value.size()) {
        error = "count '" + value + "' out of range";
        return false;
    }
    out = v;
    return true;
}

bool
tryParseU32(const std::string &value, std::uint32_t &out,
            std::string &error)
{
    std::uint64_t v = 0;
    if (!tryParseCount(value, v, error)) {
        return false;
    }
    if (v > 0xffffffffULL) {
        error = "value '" + value + "' out of range";
        return false;
    }
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
tryParseFactor(const std::string &value, double &out,
               std::string &error)
{
    char *end = nullptr;
    const double f = std::strtod(value.c_str(), &end);
    // Inclusive-range form is false for NaN.
    if (end == value.c_str() || *end != '\0' ||
        !(f > 0.0 && f <= 1.0)) {
        error = "bad factor '" + value + "' (need (0, 1])";
        return false;
    }
    out = f;
    return true;
}

} // namespace

bool
tryParseFleetFaultRule(FleetFaultClass cls, const std::string &spec,
                       FleetFaultRule &out, std::string &error)
{
    FleetFaultRule rule;
    rule.cls = cls;

    bool have_at = false;
    bool have_shard = false;
    bool have_count = false;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) {
            comma = spec.size();
        }
        const std::string field = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (field.empty()) {
            continue;
        }
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
            error = "field '" + field + "' is not key=value";
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        bool ok = true;
        if (key == "at") {
            ok = tryParseTicks(value, rule.at, error);
            have_at = true;
        } else if (key == "shard") {
            ok = tryParseU32(value, rule.shard, error);
            have_shard = true;
        } else if (key == "len") {
            ok = tryParseTicks(value, rule.duration, error);
        } else if (key == "factor") {
            ok = tryParseFactor(value, rule.factor, error);
        } else if (key == "count") {
            ok = tryParseCount(value, rule.count, error);
            have_count = true;
        } else if (key == "mix") {
            ok = tryParseU32(value, rule.mix, error);
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
        if (!ok) {
            return false;
        }
    }

    if (!have_at) {
        error = "rule needs at=TIME";
        return false;
    }
    switch (cls) {
      case FleetFaultClass::kShardCrash:
        if (!have_shard) {
            error = "crash needs shard=N";
            return false;
        }
        break;
      case FleetFaultClass::kShardBrownout:
        if (!have_shard) {
            error = "brownout needs shard=N";
            return false;
        }
        if (rule.duration == 0) {
            error = "brownout needs len=TIME";
            return false;
        }
        break;
      case FleetFaultClass::kFlashCrowd:
        if (!have_count || rule.count == 0) {
            error = "flood needs count=N (>= 1)";
            return false;
        }
        break;
    }
    if (rule.at + rule.duration < rule.at) {
        error = "rule window overflows the tick range";
        return false;
    }
    out = rule;
    return true;
}

FleetFaultRule
parseFleetFaultRule(FleetFaultClass cls, const std::string &spec)
{
    FleetFaultRule rule;
    std::string error;
    if (!tryParseFleetFaultRule(cls, spec, rule, error)) {
        vs_fatal("chaos spec '", spec, "': ", error);
    }
    return rule;
}

bool
ChaosConfig::anyRuleFor(FleetFaultClass c) const
{
    for (const FleetFaultRule &rule : rules) {
        if (rule.cls == c) {
            return true;
        }
    }
    return false;
}

void
ChaosConfig::validate(std::uint32_t shards) const
{
    for (const FleetFaultRule &rule : rules) {
        switch (rule.cls) {
          case FleetFaultClass::kShardCrash:
            // Crashing the only shard leaves nowhere to fail over
            // to; recovery needs at least one survivor.
            if (shards < 2) {
                vs_fatal("crash rules need a fleet of >= 2 shards");
            }
            [[fallthrough]];
          case FleetFaultClass::kShardBrownout:
            if (rule.shard >= shards) {
                vs_fatal("chaos rule targets shard ", rule.shard,
                         " of a ", shards, "-shard fleet");
            }
            if (rule.cls == FleetFaultClass::kShardBrownout &&
                rule.duration == 0) {
                vs_fatal("brownout rules need a duration (len=...)");
            }
            break;
          case FleetFaultClass::kFlashCrowd:
            if (rule.count == 0) {
                vs_fatal("flood rules need count >= 1");
            }
            break;
        }
        if (rule.factor <= 0.0 || rule.factor > 1.0) {
            vs_fatal("chaos factor ", rule.factor,
                     " outside (0, 1]");
        }
    }
}

void
FleetLadder::transitionTo(FleetHealth next, Tick now)
{
    vs_assert(now >= entered_, "fleet ladder clock moved backwards");
    dwell_[static_cast<std::size_t>(state_)] += now - entered_;
    entered_ = now;
    state_ = next;
    ++transitions_;
}

Tick
FleetLadder::dwell(FleetHealth s, Tick now) const
{
    Tick d = dwell_[static_cast<std::size_t>(s)];
    if (s == state_) {
        vs_assert(now >= entered_,
                  "fleet ladder clock moved backwards");
        d += now - entered_;
    }
    return d;
}

const char *
fleetHealthName(FleetHealth s)
{
    switch (s) {
      case FleetHealth::kHealthy:
        return "healthy";
      case FleetHealth::kBrownedOut:
        return "brownedOut";
      case FleetHealth::kShedding:
        return "shedding";
    }
    return "?";
}

std::vector<ArrivalEvent>
withFlashCrowds(std::vector<ArrivalEvent> base,
                const ChaosConfig &chaos)
{
    if (!chaos.anyRuleFor(FleetFaultClass::kFlashCrowd)) {
        return base;
    }
    std::uint64_t next_id = 0;
    for (const ArrivalEvent &a : base) {
        next_id = std::max(next_id, a.id + 1);
    }
    for (const FleetFaultRule &rule : chaos.rules) {
        if (rule.cls != FleetFaultClass::kFlashCrowd) {
            continue;
        }
        for (std::uint64_t i = 0; i < rule.count; ++i) {
            ArrivalEvent a;
            // Spread the burst evenly over [at, at + len]; 128-bit
            // intermediate so duration * i cannot overflow.
            a.tick = rule.at +
                     static_cast<Tick>(
                         static_cast<unsigned __int128>(
                             rule.duration) *
                         i / rule.count);
            a.id = next_id++;
            a.mix = rule.mix;
            base.push_back(a);
        }
    }
    // Stable: base arrivals keep their relative order at equal
    // ticks, and flood arrivals land after them.
    std::stable_sort(base.begin(), base.end(),
                     [](const ArrivalEvent &a, const ArrivalEvent &b) {
                         return a.tick < b.tick;
                     });
    return base;
}

} // namespace vstream
