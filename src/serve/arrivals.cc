#include "serve/arrivals.hh"

#include <cmath>
#include <sstream>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace vstream
{

void
PoissonArrivalConfig::validate() const
{
    if (rate_per_s <= 0.0) {
        vs_fatal("arrival rate must be positive, got ", rate_per_s,
                 " sessions/s");
    }
    if (leave_probability < 0.0 || leave_probability > 1.0) {
        vs_fatal("leave probability must be in [0, 1], got ",
                 leave_probability);
    }
    if (leave_probability > 0.0 && max_watch < min_watch) {
        vs_fatal("leave window is empty: max_watch < min_watch");
    }
}

std::vector<ArrivalEvent>
poissonArrivals(const PoissonArrivalConfig &cfg)
{
    cfg.validate();
    Random rng(cfg.seed);
    std::vector<ArrivalEvent> events;
    events.reserve(cfg.count);
    Tick now = 0;
    for (std::uint64_t i = 0; i < cfg.count; ++i) {
        // Exponential inter-arrival gap, rounded to whole ticks.
        // uniform() is in [0, 1) so the log argument stays positive.
        const double gap_s =
            -std::log(1.0 - rng.uniform()) / cfg.rate_per_s;
        now += static_cast<Tick>(std::llround(
            gap_s * static_cast<double>(sim_clock::s)));
        ArrivalEvent e;
        e.tick = now;
        e.id = cfg.first_id + i;
        if (cfg.num_mixes > 0) {
            e.mix = static_cast<std::uint32_t>(i % cfg.num_mixes);
        }
        if (cfg.leave_probability > 0.0 &&
            rng.chance(cfg.leave_probability)) {
            e.leave_after =
                rng.uniformInt(cfg.min_watch, cfg.max_watch);
        }
        events.push_back(e);
    }
    return events;
}

namespace
{

/** Set @p err to a diagnostic naming @p line; returns a failed
 * result from the parse loop. */
ArrivalTraceResult
traceError(std::size_t line, const std::string &what)
{
    ArrivalTraceResult r;
    std::ostringstream os;
    os << "arrival trace line " << line << ": " << what;
    r.error = os.str();
    return r;
}

} // namespace

ArrivalTraceResult
parseArrivalTrace(std::istream &is, std::uint64_t first_id)
{
    ArrivalTraceResult r;
    std::string line;
    std::size_t lineno = 0;
    Tick last_tick = 0;
    std::uint64_t next_id = first_id;
    while (std::getline(is, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream ls(line);
        std::uint64_t arrival_us = 0;
        std::uint64_t watch_us = 0;
        std::uint32_t mix = 0;
        if (!(ls >> arrival_us)) {
            continue; // blank or comment-only line
        }
        if (!(ls >> watch_us >> mix)) {
            return traceError(lineno,
                              "expected <arrival_us> <watch_us> "
                              "<mix>");
        }
        std::string trailing;
        if (ls >> trailing) {
            return traceError(lineno,
                              "trailing junk '" + trailing + "'");
        }
        // Bound the arithmetic: microseconds-to-ticks must not wrap.
        constexpr std::uint64_t kMaxUs =
            ~std::uint64_t{0} / sim_clock::us;
        if (arrival_us > kMaxUs || watch_us > kMaxUs) {
            return traceError(lineno, "timestamp overflows ticks");
        }
        ArrivalEvent e;
        e.tick = arrival_us * sim_clock::us;
        e.id = next_id++;
        e.leave_after = watch_us * sim_clock::us;
        e.mix = mix;
        if (e.tick < last_tick) {
            return traceError(lineno,
                              "arrivals must be non-decreasing");
        }
        last_tick = e.tick;
        r.events.push_back(e);
    }
    return r;
}

} // namespace vstream
