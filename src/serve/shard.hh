/**
 * @file
 * One serving shard: an execution and stats domain of the fleet.
 *
 * A Shard is deliberately small: it tracks the budget currently
 * reserved by the sessions placed on it, an *advisory* slice of the
 * global budget the Placer assigns it (placement weight only - the
 * binding admission decision is global, serve/placer.hh), and a
 * mergeable StatsSnapshot into which every finished session's
 * outcome is folded at admission time and then discarded.  That
 * fold-and-discard is the O(shards) memory story: after absorb()
 * nothing per-session remains but a heap entry in the Placer, so a
 * 100k-session soak retains kilobytes of stats, not gigabytes of
 * registries.
 *
 * Because the snapshot merge is exact (integer counters, fixed-point
 * scalar sums, integer histogram buckets - sim/stats_snapshot.hh),
 * merging the shards' snapshots yields the same bytes no matter how
 * the Placer scattered sessions across them: the shard-count
 * invariance test (tests/test_shard.cc, CI shard-smoke) rests on
 * this file staying arithmetic-exact.
 */

#ifndef VSTREAM_SERVE_SHARD_HH
#define VSTREAM_SERVE_SHARD_HH

#include <cstdint>

#include "serve/session.hh"
#include "sim/stats_snapshot.hh"

namespace vstream
{

/** Budget tracking + mergeable stats for one fleet shard. */
class Shard
{
  public:
    explicit Shard(std::uint32_t id) : id_(id) {}

    std::uint32_t id() const { return id_; }

    // --- placement (advisory) -------------------------------------------

    /** Assign this shard's slice of the global budget.  Slices only
     * weight placement; they never gate admission, so rebalancing
     * them is stats-neutral by construction. */
    void setSlices(double bw_mbps, double fb_bytes);

    void reserve(double bw_mbps, std::uint64_t fb_bytes);
    void release(double bw_mbps, std::uint64_t fb_bytes);

    /** Fullness relative to the slice: max of the bandwidth and
     * frame-buffer reservation ratios (0 when idle). */
    double load() const;

    double bwSliceMBps() const { return bw_slice_; }
    double fbSliceBytes() const { return fb_slice_; }
    double bwReservedMBps() const { return bw_reserved_; }
    std::uint64_t fbReservedBytes() const { return fb_reserved_; }
    std::uint32_t active() const { return active_; }

    /**
     * Derate this shard's effective slice by @p f in (0, 1] (1.0 =
     * full capacity).  A browned-out shard looks fuller to load(),
     * so pickShard steers arrivals away - placement-only, exactly
     * like setSlices, hence stats-neutral (tests/test_chaos.cc pins
     * this).
     */
    void setBrownoutFactor(double f);

    double brownoutFactor() const { return brownout_factor_; }
    bool brownedOut() const { return brownout_factor_ < 1.0; }

    // --- stats ----------------------------------------------------------

    /**
     * Fold @p o into this shard's snapshot; the outcome can be
     * discarded afterwards.  Counters, energy aggregates and
     * dwell/span histograms; outcomes with a non-empty group also
     * feed "mix.<group>.*" entries (field layout: docs/FORMATS.md).
     */
    void absorb(const SessionOutcome &o);

    /**
     * Fold one session's settled dedup accounting into the snapshot
     * as "dedup.*" counters.  Only called when the fleet runs with
     * dedup enabled, so dedup-off snapshots stay byte-identical to
     * pre-dedup builds.
     */
    void absorbDedup(const DedupSettle &s);

    /**
     * Fold the cumulative aggregates of fault domain @p domain as
     * "dedup.domain.<domain>.*" counters (end of run; attributes
     * poisoning to its blast radius in the merged fleet view).
     */
    void foldDedupDomain(const DedupDomainStats &st,
                         std::uint64_t entries,
                         std::uint64_t live_refs,
                         std::uint32_t domain);

    const StatsSnapshot &snapshot() const { return snapshot_; }
    std::uint64_t absorbed() const { return absorbed_; }

    // --- crash/restore (serve/chaos.hh) ---------------------------------

    /**
     * Lose everything resident: reservations, active count, stats,
     * the absorb counter.  Slices and the brownout factor survive -
     * they are the Placer's placement policy, not shard state.  The
     * Placer follows up with restore() + failover.
     */
    void crashReset();

    /** Adopt a checkpoint's stats and absorb count (after
     * crashReset; see serve/snapshot.hh). */
    void restore(const StatsSnapshot &stats, std::uint64_t absorbed);

  private:
    std::uint32_t id_;
    double bw_slice_ = 0.0;
    double fb_slice_ = 0.0;
    double brownout_factor_ = 1.0;
    double bw_reserved_ = 0.0;
    std::uint64_t fb_reserved_ = 0;
    std::uint32_t active_ = 0;
    std::uint64_t absorbed_ = 0;
    // vstream:shard_local
    StatsSnapshot snapshot_;
};

} // namespace vstream

#endif // VSTREAM_SERVE_SHARD_HH
