#include "serve/session.hh"

#include <sstream>
#include <string>
#include <utility>

#include "sim/logging.hh"

namespace vstream
{

namespace
{

/** Seed of the session's jitter stream: the profile seed remixed
 * with the session id so neighbouring ids draw independently. */
std::uint64_t
jitterSeed(const SessionConfig &cfg)
{
    std::uint64_t state =
        cfg.pipeline.profile.seed ^
        (cfg.id + 0x9e3779b97f4a7c15ULL);
    return splitMix64(state);
}

} // namespace

Session::Session(SessionConfig cfg)
    : cfg_(std::move(cfg)), pipeline_(cfg_.pipeline),
      breaker_(cfg_.breaker), rng_(jitterSeed(cfg_))
{
    cfg_.health.validate();
}

void
Session::start(Tick start_offset)
{
    vs_assert(!started_, "a session may only start once");
    started_ = true;
    start_offset_ = start_offset;
    pipeline_.start();

    // Dedup recording observes unique-block writes into a private
    // per-session log; the shared tier itself is only consulted
    // serially at settle time, so rehearsal stays hermetic.
    if (cfg_.dedup_record && pipeline_.hasMach()) {
        pipeline_.setMachWriteObserver(
            [this](std::uint32_t digest, std::uint16_t aux,
                   const std::vector<std::uint8_t> &truth) {
                dedup_recorder_.observe(digest, aux, truth);
            });
    }

    // Validate the ingest trace inside this session's fault domain:
    // damage lands on the ladder, never outside the session.
    if (!cfg_.trace_blob.empty()) {
        std::istringstream is(
            std::string(cfg_.trace_blob.begin(),
                        cfg_.trace_blob.end()));
        const TraceLoadResult tr =
            loadTrace(is, cfg_.trace_policy, nullptr);
        trace_error_ = tr.error;
        if (!tr.ok()) {
            ladder_.transitionTo(HealthState::kQuarantined,
                                 start_offset_);
        } else if (tr.frames_skipped > 0) {
            ladder_.transitionTo(HealthState::kDegraded,
                                 start_offset_);
        }
    }
}

bool
Session::done() const
{
    if (ladder_.evicted() || pipeline_.stepDone()) {
        return true;
    }
    // Viewer departure: stop once the next vsync would land at or
    // past the leave point on the session's local clock.
    return cfg_.leave_after > 0 &&
           pipeline_.nextVsyncTick() >= cfg_.leave_after;
}

bool
Session::leftEarly() const
{
    return cfg_.leave_after > 0 && !ladder_.evicted() &&
           !pipeline_.stepDone() &&
           pipeline_.nextVsyncTick() >= cfg_.leave_after;
}

Tick
Session::nextTick() const
{
    return start_offset_ + pipeline_.nextVsyncTick();
}

void
Session::stepVsync()
{
    vs_assert(started_ && !done(), "stepping a finished session");
    const Tick now = nextTick();
    pipeline_.stepVsync();
    ++vsyncs_;
    if (vsyncs_ % cfg_.health.window_vsyncs == 0) {
        evaluateWindow(now);
    }
}

void
Session::evaluateWindow(Tick now)
{
    // Circuit breaker first: a false-hit storm is a verification
    // problem, not (yet) a playback problem.
    if (pipeline_.hasMach() && cfg_.breaker.enabled) {
        const MachStats m = pipeline_.liveMachStats();
        const std::uint64_t d_lookups = m.lookups - last_lookups_;
        const std::uint64_t d_false = m.false_hits - last_false_hits_;
        last_lookups_ = m.lookups;
        last_false_hits_ = m.false_hits;
        if (breaker_.onWindow(d_lookups, d_false, now, rng_)) {
            pipeline_.setMachBypass(breaker_.bypass());
        }
    }

    const PipelineResult &live = pipeline_.liveResult();
    const std::uint64_t d_drops = live.drops - last_drops_;
    const std::uint64_t d_underruns = live.underruns - last_underruns_;
    last_drops_ = live.drops;
    last_underruns_ = live.underruns;

    const bool fatal =
        pipeline_.liveDramAbandoned() >= cfg_.health.abandon_budget;
    const bool bad = d_drops >= cfg_.health.degrade_drops ||
                     d_underruns >= cfg_.health.degrade_underruns;

    switch (ladder_.state()) {
    case HealthState::kHealthy:
        if (fatal) {
            ladder_.transitionTo(HealthState::kQuarantined, now);
        } else if (bad) {
            degraded_streak_ = 1;
            clean_streak_ = 0;
            ladder_.transitionTo(HealthState::kDegraded, now);
        }
        break;
    case HealthState::kDegraded:
        if (fatal) {
            ladder_.transitionTo(HealthState::kQuarantined, now);
        } else if (bad) {
            ++degraded_streak_;
            clean_streak_ = 0;
            if (degraded_streak_ >= cfg_.health.quarantine_windows) {
                ladder_.transitionTo(HealthState::kQuarantined, now);
            }
        } else {
            ++clean_streak_;
            if (clean_streak_ >= cfg_.health.recover_windows) {
                degraded_streak_ = 0;
                clean_streak_ = 0;
                ladder_.transitionTo(HealthState::kHealthy, now);
            }
        }
        break;
    case HealthState::kQuarantined:
        // Linger long enough for the dwell to be observable, then
        // release the session's resources.
        ++quarantined_windows_;
        if (quarantined_windows_ >= cfg_.health.evict_windows) {
            ladder_.transitionTo(HealthState::kEvicted, now);
        }
        break;
    case HealthState::kEvicted:
        vs_panic("evicted session evaluated a health window");
    }
}

void
Session::finalize(Tick now)
{
    if (finalized_) {
        return;
    }
    finalized_ = true;
    // A quarantined session that ran out of playback is still
    // accounted as evicted: it never returned to service.
    if (ladder_.state() == HealthState::kQuarantined) {
        ladder_.transitionTo(HealthState::kEvicted, now);
    }
    result_ = pipeline_.finish();
}

const PipelineResult &
Session::result() const
{
    vs_assert(finalized_, "result() before finalize()");
    return result_;
}

DedupRecord
Session::takeDedup()
{
    return dedup_recorder_.take();
}

double
Session::demandMBps(const PipelineConfig &cfg)
{
    const VideoProfile &p = cfg.profile;
    const double frame_bytes =
        static_cast<double>(p.mabsPerFrame()) *
        static_cast<double>(p.mab_dim * p.mab_dim * 3);
    // Decode writes each frame once, the display reads it once.
    return 2.0 * frame_bytes * static_cast<double>(p.fps) / 1e6;
}

RehearsedSession
rehearseSession(const SessionConfig &cfg)
{
    Session s(cfg);
    s.start(0);
    RehearsedSession r;
    r.immediate = s.done();
    while (!s.done()) {
        r.local_end = s.nextTick();
        s.stepVsync();
    }
    const bool left_early = s.leftEarly();
    s.finalize(r.local_end);
    SessionOutcome &o = r.outcome;
    o.id = s.id();
    o.final_state = s.health();
    o.trace_error = s.traceError();
    o.breaker_trips = s.breaker().trips();
    o.breaker_reprobes = s.breaker().reprobes();
    o.breaker_state = s.breaker().state();
    for (std::size_t st = 0; st < kNumHealthStates; ++st) {
        o.dwell[st] = s.ladder().dwell(
            static_cast<HealthState>(st), r.local_end);
    }
    o.left_early = left_early;
    o.group = cfg.stats_group;
    o.end_tick = r.local_end;
    o.result = s.result();
    o.dedup = s.takeDedup();
    return r;
}

std::uint64_t
Session::framebufferBytes(const PipelineConfig &cfg)
{
    const VideoProfile &p = cfg.profile;
    const std::uint64_t frame_bytes =
        static_cast<std::uint64_t>(p.mabsPerFrame()) * p.mab_dim *
        p.mab_dim * 3;
    // Triple buffering, or batch+2 slots when batching, plus the
    // MACH retention window (frames that must stay resident for
    // inter-frame pointers).
    std::uint64_t slots =
        std::max<std::uint64_t>(3, cfg.scheme.batch + 2);
    if (cfg.scheme.mach) {
        slots += cfg.mach.num_machs - 1;
    }
    return slots * frame_bytes;
}

} // namespace vstream
