/**
 * @file
 * Per-session health: the degradation ladder and the MACH circuit
 * breaker.
 *
 * A serving session is never allowed to take the process down: every
 * per-session fatal condition (trace damage, arrival-stall storms,
 * DRAM abandon-budget exhaustion, MACH false-hit storms) is mapped
 * onto a small state machine that only ever degrades that one
 * session.  The ladder is
 *
 *   Healthy -> Degraded -> Quarantined -> Evicted
 *
 * with recovery allowed from Degraded back to Healthy after enough
 * clean windows.  Orthogonally, a circuit breaker watches the MACH
 * verify-on-hit false-hit rate: past a threshold the session's MACH
 * is bypassed (full 48 B unique writes), then re-probed after an
 * exponential-backoff cooldown whose jitter comes from the session's
 * own xoshiro256** stream, so every trip and re-probe is
 * reproducible.
 */

#ifndef VSTREAM_SERVE_HEALTH_HH
#define VSTREAM_SERVE_HEALTH_HH

#include <array>
#include <cstdint>

#include "sim/random.hh"
#include "sim/ticks.hh"

namespace vstream
{

/** The session degradation ladder, worst state last. */
enum class HealthState : std::uint8_t
{
    kHealthy = 0,
    kDegraded,
    kQuarantined,
    kEvicted,
};

constexpr std::size_t kNumHealthStates = 4;

/** Stable lower-case name ("healthy", ..., "evicted"). */
const char *healthStateName(HealthState s);

/** Ladder policy knobs, evaluated once per health window. */
struct HealthConfig
{
    /** Window length in vsyncs between two health evaluations. */
    std::uint32_t window_vsyncs = 32;
    /** Drops within one window that mark it degraded. */
    std::uint32_t degrade_drops = 8;
    /** Underruns within one window that mark it degraded (the
     * arrival-stall-storm signal). */
    std::uint32_t degrade_underruns = 4;
    /** Total DRAM bursts abandoned before the session is
     * quarantined outright (a per-session error budget). */
    std::uint64_t abandon_budget = 16;
    /** Consecutive degraded windows before quarantine. */
    std::uint32_t quarantine_windows = 3;
    /** Consecutive clean windows before Degraded recovers. */
    std::uint32_t recover_windows = 2;
    /** Windows a quarantined session lingers (so its dwell is
     * observable) before it is evicted. */
    std::uint32_t evict_windows = 2;

    void validate() const;
};

/**
 * Tracks the ladder state and how long the session dwelt in each
 * state.  Pure bookkeeping: the transition *policy* lives in Session.
 */
class HealthLadder
{
  public:
    HealthState state() const { return state_; }

    bool evicted() const { return state_ == HealthState::kEvicted; }

    /** Move to @p next at time @p now, closing the current dwell. */
    void transitionTo(HealthState next, Tick now);

    /** Ladder transitions taken so far. */
    std::uint64_t transitions() const { return transitions_; }

    /**
     * Total ticks spent in @p s; @p now closes the still-open dwell
     * of the current state.
     */
    Tick dwell(HealthState s, Tick now) const;

  private:
    HealthState state_ = HealthState::kHealthy;
    Tick entered_ = 0;
    std::uint64_t transitions_ = 0;
    std::array<Tick, kNumHealthStates> dwell_{};
};

/** Circuit-breaker knobs for the MACH verification path. */
struct BreakerConfig
{
    bool enabled = true;
    /** Per-window falseHits/lookups rate that trips the breaker. */
    double false_hit_threshold = 0.02;
    /** Windows with fewer lookups than this are not judged. */
    std::uint64_t min_lookups = 64;
    /** Cooldown after the first trip; doubles per further trip. */
    Tick cooldown_base = static_cast<Tick>(250) * sim_clock::ms;
    /** Upper bound on a single cooldown. */
    Tick cooldown_cap = static_cast<Tick>(4) * sim_clock::s;
    /** Uniform jitter fraction added to each cooldown (in [0, 1]). */
    double jitter_frac = 0.2;

    void validate() const;
};

/**
 * Closed -> (false-hit storm) -> Open -> (cooldown) -> HalfOpen
 * -> clean probe window -> Closed, or another storm -> Open again
 * with a doubled cooldown.
 *
 * While Open the session's MACH is bypassed; HalfOpen re-enables it
 * for one probe window.
 */
class CircuitBreaker
{
  public:
    enum class State : std::uint8_t
    {
        kClosed = 0,
        kOpen,
        kHalfOpen,
    };

    explicit CircuitBreaker(const BreakerConfig &cfg);

    State state() const { return state_; }

    /** Should the session's MACH be bypassed right now? */
    bool bypass() const { return state_ == State::kOpen; }

    std::uint64_t trips() const { return trips_; }
    std::uint64_t reprobes() const { return reprobes_; }

    /** End of the running cooldown (valid while Open). */
    Tick cooldownEnd() const { return reopen_at_; }

    /**
     * Feed one health window's MACH counters.
     *
     * @param lookups    lookups issued during the window
     * @param false_hits verify-on-hit demotions during the window
     * @param now        absolute tick of the window boundary
     * @param rng        the session's jitter stream
     * @return true when the state changed (caller re-applies the
     *         bypass to the pipeline).
     */
    bool onWindow(std::uint64_t lookups, std::uint64_t false_hits,
                  Tick now, Random &rng);

  private:
    void trip(Tick now, Random &rng);

    BreakerConfig cfg_;
    State state_ = State::kClosed;
    std::uint64_t trips_ = 0;
    std::uint64_t reprobes_ = 0;
    Tick reopen_at_ = 0;
};

/** Stable lower-case name ("closed", "open", "halfOpen"). */
const char *breakerStateName(CircuitBreaker::State s);

} // namespace vstream

#endif // VSTREAM_SERVE_HEALTH_HH
