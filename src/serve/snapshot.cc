#include "serve/snapshot.hh"

#include <algorithm>

#include "sim/byte_io.hh"

namespace vstream
{

namespace
{

constexpr std::uint8_t kMagic[4] = {'V', 'S', 'S', 'S'};
constexpr std::uint32_t kVersion = 1;

} // namespace

std::vector<std::uint8_t>
serializeShardSnapshot(const ShardSnapshot &snap)
{
    std::vector<std::uint8_t> out;
    // Byte-wise append: GCC 12's stringop-overflow analysis misfires
    // on range-insert into a fresh vector under -Werror.
    for (const std::uint8_t b : kMagic) {
        out.push_back(b);
    }
    byte_io::putU32(out, kVersion);
    byte_io::putU64(out, snap.tick);
    byte_io::putU64(out, snap.absorbed);
    snap.stats.serialize(out);
    return out;
}

bool
tryDeserializeShardSnapshot(const std::uint8_t *data,
                            std::size_t size, ShardSnapshot &out,
                            std::string &error)
{
    const std::uint8_t *p = data;
    const std::uint8_t *end = data + size;
    if (size < sizeof(kMagic) ||
        !std::equal(kMagic, kMagic + sizeof(kMagic), p)) {
        error = "bad shard snapshot magic";
        return false;
    }
    p += sizeof(kMagic);
    std::uint32_t version = 0;
    if (!byte_io::getU32(p, end, version)) {
        error = "shard snapshot header truncated";
        return false;
    }
    if (version != kVersion) {
        error = "unknown shard snapshot version";
        return false;
    }
    ShardSnapshot snap;
    std::uint64_t tick = 0;
    if (!byte_io::getU64(p, end, tick) ||
        !byte_io::getU64(p, end, snap.absorbed)) {
        error = "shard snapshot header truncated";
        return false;
    }
    snap.tick = tick;
    if (!snap.stats.tryDeserialize(p, end, error)) {
        return false;
    }
    if (p != end) {
        error = "trailing bytes after shard snapshot";
        return false;
    }
    out = std::move(snap);
    return true;
}

} // namespace vstream
