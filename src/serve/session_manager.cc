#include "serve/session_manager.hh"

#include <string>
#include <utility>

#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

void
ServeConfig::validate() const
{
    if (bandwidth_budget_mbps <= 0.0) {
        vs_fatal("serve bandwidth budget must be positive, got ",
                 bandwidth_budget_mbps, " MB/s");
    }
    if (framebuffer_budget_bytes == 0) {
        vs_fatal("serve frame-buffer budget must be positive");
    }
    if (max_active == 0) {
        vs_fatal("serve max_active must be >= 1");
    }
}

SessionManager::SessionManager(ServeConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
}

SessionManager::~SessionManager() = default;

bool
SessionManager::fits(double bw_mbps, std::uint64_t fb_bytes) const
{
    return active_.size() < cfg_.max_active &&
           bw_reserved_ + bw_mbps <= cfg_.bandwidth_budget_mbps &&
           fb_reserved_ + fb_bytes <= cfg_.framebuffer_budget_bytes;
}

bool
SessionManager::couldEverFit(double bw_mbps,
                             std::uint64_t fb_bytes) const
{
    return bw_mbps <= cfg_.bandwidth_budget_mbps &&
           fb_bytes <= cfg_.framebuffer_budget_bytes;
}

Admission
SessionManager::submit(SessionConfig cfg)
{
    const double bw = Session::demandMBps(cfg.pipeline);
    const std::uint64_t fb = Session::framebufferBytes(cfg.pipeline);
    if (fits(bw, fb)) {
        activate(std::move(cfg), queue_.curTick());
        return Admission::kAdmitted;
    }
    if (cfg_.queue_when_full && couldEverFit(bw, fb)) {
        ++queued_;
        waiting_.push_back(Waiting{std::move(cfg), queue_.curTick()});
        armQueueTimer();
        return Admission::kQueued;
    }
    ++rejected_;
    return Admission::kRejected;
}

Tick
SessionManager::queueDeadlineOf(const Waiting &w) const
{
    if (cfg_.queue_deadline == 0) {
        return maxTick;
    }
    // Saturate: a deadline past the tick range never fires.
    return w.enqueue > maxTick - cfg_.queue_deadline
               ? maxTick
               : w.enqueue + cfg_.queue_deadline;
}

void
SessionManager::armQueueTimer()
{
    if (cfg_.queue_deadline == 0) {
        return;
    }
    if (waiting_.empty()) {
        if (queue_timer_ && queue_timer_->scheduled()) {
            queue_.deschedule(queue_timer_.get());
        }
        return;
    }
    // Strict FIFO means the front has the earliest enqueue tick,
    // hence the earliest deadline: one timer suffices.
    const Tick dl = queueDeadlineOf(waiting_.front());
    if (dl == maxTick) {
        return;
    }
    if (queue_timer_ == nullptr) {
        queue_timer_ = std::make_unique<LambdaEvent>(
            "serve.queueDeadline", [this] { expireWaiting(); },
            Event::kStatsPriority);
    }
    if (queue_timer_->scheduled()) {
        if (queue_timer_->when() != dl) {
            queue_.reschedule(queue_timer_.get(), dl);
        }
    } else {
        queue_.schedule(queue_timer_.get(), dl);
    }
}

void
SessionManager::expireWaiting()
{
    const Tick now = queue_.curTick();
    while (!waiting_.empty() &&
           queueDeadlineOf(waiting_.front()) <= now) {
        Waiting w = std::move(waiting_.front());
        waiting_.pop_front();
        ++queue_timeouts_;
        // The session never ran: record a marker outcome (id/group
        // and the queue span) so the caller can see who timed out.
        SessionOutcome o;
        o.id = w.cfg.id;
        o.group = w.cfg.stats_group;
        o.queue_timeout = true;
        o.start_offset = w.enqueue;
        o.end_tick = now;
        outcomes_.push_back(std::move(o));
    }
    armQueueTimer();
}

void
SessionManager::activate(SessionConfig cfg, Tick start_offset)
{
    ++admitted_;
    Active a;
    a.bw_mbps = Session::demandMBps(cfg.pipeline);
    a.fb_bytes = Session::framebufferBytes(cfg.pipeline);
    const std::uint64_t sid = cfg.id;
    a.sid = sid;
    a.start_offset = start_offset;

    RehearsedSession *reh = rehearsed_.find(sid);
    if (reh != nullptr) {
        // Replay: one completion event at the rehearsed end tick
        // stands in for the whole vsync-by-vsync walk.
        a.replay = true;
        a.outcome = std::move(reh->outcome);
        const Tick local_end = reh->local_end;
        const bool immediate = reh->immediate;
        rehearsed_.erase(sid);
        a.event = std::make_unique<LambdaEvent>(
            "serve.session" + std::to_string(sid),
            [this, sid] {
                for (std::size_t slot = 0; slot < active_.size();
                     ++slot) {
                    if (active_[slot].sid == sid) {
                        finalizeActive(slot);
                        return;
                    }
                }
                vs_panic("event fired for unknown session ", sid);
            },
            Event::kVsyncPriority);
        bw_reserved_ += a.bw_mbps;
        fb_reserved_ += a.fb_bytes;
        if (!immediate) {
            queue_.schedule(a.event.get(), start_offset + local_end);
        }
        active_.push_back(std::move(a));
        if (immediate) {
            finalizeActive(active_.size() - 1);
        }
        return;
    }

    a.session = std::make_unique<Session>(std::move(cfg));
    a.session->start(start_offset);
    a.event = std::make_unique<LambdaEvent>(
        "serve.session" + std::to_string(sid),
        [this, sid] {
            for (std::size_t slot = 0; slot < active_.size();
                 ++slot) {
                if (active_[slot].sid == sid) {
                    stepActive(slot);
                    return;
                }
            }
            vs_panic("event fired for unknown session ", sid);
        },
        Event::kVsyncPriority);
    bw_reserved_ += a.bw_mbps;
    fb_reserved_ += a.fb_bytes;

    const bool runnable = !a.session->done();
    if (runnable) {
        queue_.schedule(a.event.get(), a.session->nextTick());
    }
    active_.push_back(std::move(a));
    if (!runnable) {
        finalizeActive(active_.size() - 1);
    }
}

void
SessionManager::precompute(const std::vector<SessionConfig> &cfgs,
                           unsigned jobs)
{
    std::vector<RehearsedSession> rehearsals = parallelMap(
        jobs, cfgs.size(), [&](std::size_t i) {
            return rehearseSession(cfgs[i]);
        });
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        vs_assert(rehearsed_.find(cfgs[i].id) == nullptr,
                  "session ", cfgs[i].id, " rehearsed twice");
        rehearsed_[cfgs[i].id] = std::move(rehearsals[i]);
    }
}

void
SessionManager::stepActive(std::size_t slot)
{
    Active &a = active_[slot];
    a.session->stepVsync();
    if (!a.session->done()) {
        queue_.schedule(a.event.get(), a.session->nextTick());
        return;
    }
    finalizeActive(slot);
}

void
SessionManager::finalizeActive(std::size_t slot)
{
    Active a = std::move(active_[slot]);
    active_.erase(active_.begin() +
                  static_cast<std::ptrdiff_t>(slot));

    SessionOutcome o;
    if (a.replay) {
        // The rehearsed outcome carries everything offset-invariant;
        // rebase the two absolute ticks onto the shared timeline.
        o = std::move(a.outcome);
        o.start_offset = a.start_offset;
        o.end_tick = queue_.curTick();
        // The ladder clock starts at construction, so a live session
        // admitted at offset T dwells Healthy for T extra ticks
        // before its first transition; mirror that here.
        o.dwell[static_cast<std::size_t>(HealthState::kHealthy)] +=
            a.start_offset;
    } else {
        // leftEarly() reads the pre-finalize ladder (finalize folds
        // a quarantined leaver into Evicted).
        o.left_early = a.session->leftEarly();
        a.session->finalize(queue_.curTick());
        o.id = a.session->id();
        o.final_state = a.session->health();
        o.trace_error = a.session->traceError();
        o.breaker_trips = a.session->breaker().trips();
        o.breaker_reprobes = a.session->breaker().reprobes();
        o.breaker_state = a.session->breaker().state();
        for (std::size_t s = 0; s < kNumHealthStates; ++s) {
            o.dwell[s] = a.session->ladder().dwell(
                static_cast<HealthState>(s), queue_.curTick());
        }
        o.start_offset = a.session->startOffset();
        o.end_tick = queue_.curTick();
        o.group = a.session->config().stats_group;
        o.result = a.session->result();
        o.dedup = a.session->takeDedup();
    }
    if (dedup_tier_ != nullptr && o.dedup.any()) {
        // Settle on the serial timeline, in completion order.  With
        // one fault domain and no failover there is no lease
        // lifetime to model beyond the session itself, so the refs
        // release immediately (stale epochs still reclaim through
        // the same path the fleet uses).
        DedupLease lease;
        dedup_totals_ +=
            dedup_tier_->publish(dedup_domain_, o.dedup, lease);
        dedup_tier_->release(lease);
    }
    if (o.final_state == HealthState::kEvicted) {
        ++evicted_;
    }
    breaker_trips_ += o.breaker_trips;
    outcomes_.push_back(std::move(o));

    bw_reserved_ -= a.bw_mbps;
    vs_assert(fb_reserved_ >= a.fb_bytes,
              "frame-buffer reservation underflow");
    fb_reserved_ -= a.fb_bytes;
    // The event may be the one firing right now; park it (and the
    // session) until runAll() returns instead of destroying it
    // mid-process().
    retired_.push_back(std::move(a));

    drainWaiting();
}

void
SessionManager::drainWaiting()
{
    // Strict FIFO: no head-of-line skipping, so admission order is
    // independent of session sizes and easy to reason about.
    while (!waiting_.empty()) {
        const SessionConfig &front = waiting_.front().cfg;
        const double bw = Session::demandMBps(front.pipeline);
        const std::uint64_t fb =
            Session::framebufferBytes(front.pipeline);
        if (!fits(bw, fb)) {
            break;
        }
        SessionConfig cfg = std::move(waiting_.front().cfg);
        waiting_.pop_front();
        activate(std::move(cfg), queue_.curTick());
    }
    // The front changed; the deadline timer must follow it.
    armQueueTimer();
}

void
SessionManager::runAll()
{
    queue_.run();
    vs_assert(active_.empty(),
              "event queue drained with sessions still active");
    vs_assert(waiting_.empty(),
              "event queue drained with sessions still queued");
    retired_.clear();
}

void
SessionManager::setDedup(SharedMachTier *tier, std::uint32_t domain)
{
    vs_assert(tier == nullptr || domain < tier->domains(),
              "dedup domain out of range for the attached tier");
    dedup_tier_ = tier;
    dedup_domain_ = domain;
}

void
SessionManager::regStats(StatsRegistry &r)
{
    r.addCallback("serve.admitted", "sessions admitted (ever active)",
                  [this] {
                      return static_cast<double>(admitted_);
                  });
    r.addCallback("serve.rejected",
                  "submissions rejected at admission", [this] {
                      return static_cast<double>(rejected_);
                  });
    r.addCallback("serve.queued",
                  "submissions that waited in the admission queue",
                  [this] { return static_cast<double>(queued_); });
    r.addCallback("serve.evicted", "sessions evicted by the ladder",
                  [this] {
                      return static_cast<double>(evicted_);
                  });
    r.addCallback("serve.breakerTrips",
                  "MACH circuit-breaker trips across all sessions",
                  [this] {
                      return static_cast<double>(breaker_trips_);
                  });
    r.addCallback("serve.queueTimeouts",
                  "queued sessions expired past the deadline",
                  [this] {
                      return static_cast<double>(queue_timeouts_);
                  });
    r.addCallback("serve.active", "sessions currently active", [this] {
        return static_cast<double>(active_.size());
    });
    // vstream:allow(stats-hygiene) live gauge: tracks reservations
    r.addCallback("serve.bandwidthReservedMBps",
                  "estimated DRAM bandwidth reserved, MB/s",
                  [this] { return bw_reserved_; });
    // vstream:allow(stats-hygiene) live gauge: tracks reservations
    r.addCallback("serve.framebufferReservedBytes",
                  "frame-buffer pool bytes reserved", [this] {
                      return static_cast<double>(fb_reserved_);
                  });
    if (dedup_tier_ == nullptr) {
        // Dedup off: no serve.dedup.* keys at all, so stats dumps
        // stay byte-identical to pre-dedup builds.
        return;
    }
    r.addCallback("serve.dedup.sharedHits",
                  "DRAM writes elided by citing another session's "
                  "shared-tier block",
                  [this] {
                      return static_cast<double>(
                          dedup_totals_.shared_hits);
                  });
    r.addCallback("serve.dedup.selfHits",
                  "DRAM writes elided against the session's own "
                  "published block",
                  [this] {
                      return static_cast<double>(
                          dedup_totals_.self_hits);
                  });
    r.addCallback("serve.dedup.bytesElided",
                  "DRAM write bytes elided by the shared tier",
                  [this] {
                      return static_cast<double>(
                          dedup_totals_.bytes_elided);
                  });
    r.addCallback("serve.dedup.uniquePublished",
                  "blocks published into the shared tier", [this] {
                      return static_cast<double>(
                          dedup_totals_.unique_published);
                  });
    r.addCallback("serve.dedup.falseHits",
                  "shared-tier citations demoted by verify-on-hit",
                  [this] {
                      return static_cast<double>(
                          dedup_totals_.false_hits);
                  });
    r.addCallback("serve.dedup.blockedWrites",
                  "writes not considered for sharing (quarantine or "
                  "stale-epoch drain)",
                  [this] {
                      return static_cast<double>(
                          dedup_totals_.blocked_writes);
                  });
    r.addCallback("serve.dedup.breakerTrips",
                  "shared-tier epoch bumps forced by false-hit "
                  "storms",
                  [this] {
                      return static_cast<double>(
                          dedup_tier_->totals().trips);
                  });
}

void
SessionManager::resetStats()
{
    admitted_ = 0;
    rejected_ = 0;
    queued_ = 0;
    evicted_ = 0;
    breaker_trips_ = 0;
    queue_timeouts_ = 0;
    dedup_totals_ = DedupSettle{};
    if (dedup_tier_ != nullptr) {
        dedup_tier_->resetStats();
    }
}

} // namespace vstream
