#include "serve/fleet_report.hh"

#include "sim/json_writer.hh"

namespace vstream
{

void
writeFleetReport(std::ostream &os, const Placer &placer,
                 const std::string &bench, std::uint64_t sessions,
                 double wall_clock_seconds,
                 std::uint64_t invariant_failures)
{
    const StatsSnapshot fleet = placer.fleetSnapshot();
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.kv("schema", "vstream-soak-1");
    w.kv("bench", bench);
    w.kv("mode", "fleet");
    w.kv("sessions", static_cast<double>(sessions));
    w.kv("wall_clock_seconds", wall_clock_seconds);
    w.key("admission");
    w.beginObject();
    w.kv("admitted", static_cast<double>(placer.admitted()));
    w.kv("queued", static_cast<double>(placer.queuedTotal()));
    w.kv("rejected", static_cast<double>(placer.rejected()));
    w.endObject();
    w.kv("evictions",
         static_cast<double>(fleet.count("state.evicted")));
    w.kv("leftEarly",
         static_cast<double>(fleet.count("leftEarly")));
    w.key("breaker");
    w.beginObject();
    w.kv("trips",
         static_cast<double>(fleet.count("breaker.trips")));
    w.kv("reprobes",
         static_cast<double>(fleet.count("breaker.reprobes")));
    w.kv("recoveredSessions",
         static_cast<double>(
             fleet.count("breaker.recoveredSessions")));
    w.endObject();
    w.key("finalStates");
    w.beginObject();
    for (std::size_t st = 0; st < kNumHealthStates; ++st) {
        const char *name =
            healthStateName(static_cast<HealthState>(st));
        w.kv(name, static_cast<double>(
                       fleet.count(std::string("state.") + name)));
    }
    w.endObject();
    w.key("peak");
    w.beginObject();
    w.kv("active", static_cast<double>(placer.peakActive()));
    w.kv("waiting", static_cast<double>(placer.peakWaiting()));
    w.endObject();
    w.kv("virtualEndMs", ticksToMs(placer.endTick()));
    w.key("fleet");
    fleet.dumpJson(w);
    // The recovery ledger appears only when the chaos layer did
    // something: a chaos-off run stays byte-identical to the
    // pre-chaos report (docs/FORMATS.md, "The recovery block").
    const RecoveryTotals &rec = placer.recovery();
    if (rec.any()) {
        w.key("recovery");
        w.beginObject();
        w.kv("crashes", static_cast<double>(rec.crashes));
        w.kv("brownouts", static_cast<double>(rec.brownouts));
        w.kv("restored", static_cast<double>(rec.restored));
        w.kv("replayed", static_cast<double>(rec.replayed));
        w.kv("failedOver", static_cast<double>(rec.failed_over));
        w.kv("shed", static_cast<double>(rec.shed));
        w.kv("queueTimeouts",
             static_cast<double>(rec.queue_timeouts));
        w.endObject();
    }
    w.kv("invariantFailures",
         static_cast<double>(invariant_failures));
    w.endObject();
}

} // namespace vstream
