#include "serve/fleet_report.hh"

#include "sim/json_writer.hh"

namespace vstream
{

void
writeFleetReport(std::ostream &os, const Placer &placer,
                 const std::string &bench, std::uint64_t sessions,
                 double wall_clock_seconds,
                 std::uint64_t invariant_failures)
{
    const StatsSnapshot fleet = placer.fleetSnapshot();
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.kv("schema", "vstream-soak-1");
    w.kv("bench", bench);
    w.kv("mode", "fleet");
    w.kv("sessions", static_cast<double>(sessions));
    w.kv("wall_clock_seconds", wall_clock_seconds);
    w.key("admission");
    w.beginObject();
    w.kv("admitted", static_cast<double>(placer.admitted()));
    w.kv("queued", static_cast<double>(placer.queuedTotal()));
    w.kv("rejected", static_cast<double>(placer.rejected()));
    w.endObject();
    w.kv("evictions",
         static_cast<double>(fleet.count("state.evicted")));
    w.kv("leftEarly",
         static_cast<double>(fleet.count("leftEarly")));
    w.key("breaker");
    w.beginObject();
    w.kv("trips",
         static_cast<double>(fleet.count("breaker.trips")));
    w.kv("reprobes",
         static_cast<double>(fleet.count("breaker.reprobes")));
    w.kv("recoveredSessions",
         static_cast<double>(
             fleet.count("breaker.recoveredSessions")));
    w.endObject();
    w.key("finalStates");
    w.beginObject();
    for (std::size_t st = 0; st < kNumHealthStates; ++st) {
        const char *name =
            healthStateName(static_cast<HealthState>(st));
        w.kv(name, static_cast<double>(
                       fleet.count(std::string("state.") + name)));
    }
    w.endObject();
    w.key("peak");
    w.beginObject();
    w.kv("active", static_cast<double>(placer.peakActive()));
    w.kv("waiting", static_cast<double>(placer.peakWaiting()));
    w.endObject();
    w.kv("virtualEndMs", ticksToMs(placer.endTick()));
    w.key("fleet");
    fleet.dumpJson(w);
    // The recovery ledger appears only when the chaos layer did
    // something: a chaos-off run stays byte-identical to the
    // pre-chaos report (docs/FORMATS.md, "The recovery block").
    const RecoveryTotals &rec = placer.recovery();
    if (rec.any()) {
        w.key("recovery");
        w.beginObject();
        w.kv("crashes", static_cast<double>(rec.crashes));
        w.kv("brownouts", static_cast<double>(rec.brownouts));
        w.kv("restored", static_cast<double>(rec.restored));
        w.kv("replayed", static_cast<double>(rec.replayed));
        w.kv("failedOver", static_cast<double>(rec.failed_over));
        w.kv("shed", static_cast<double>(rec.shed));
        w.kv("queueTimeouts",
             static_cast<double>(rec.queue_timeouts));
        w.endObject();
    }
    // The dedup block appears only when the shared tier exists: a
    // dedup-off run stays byte-identical to the pre-dedup report
    // (docs/FORMATS.md, "The dedup block").
    if (const SharedMachTier *tier = placer.dedupTier()) {
        const DedupDomainStats t = tier->totals();
        w.key("dedup");
        w.beginObject();
        w.kv("sharedHits", static_cast<double>(t.shared_hits));
        w.kv("selfHits", static_cast<double>(t.self_hits));
        w.kv("bytesElided", static_cast<double>(t.bytes_elided));
        w.kv("uniquePublished",
             static_cast<double>(t.unique_published));
        w.kv("falseHits", static_cast<double>(t.false_hits));
        w.kv("blockedWrites",
             static_cast<double>(t.blocked_writes));
        w.kv("breakerTrips", static_cast<double>(t.trips));
        w.key("domains");
        w.beginObject();
        for (std::uint32_t d = 0; d < tier->domains(); ++d) {
            const DedupDomainStats &ds = tier->domainStats(d);
            w.key(std::to_string(d));
            w.beginObject();
            w.kv("epoch", static_cast<double>(ds.epoch));
            w.kv("trips", static_cast<double>(ds.trips));
            w.kv("falseHits", static_cast<double>(ds.false_hits));
            w.kv("sharedHits",
                 static_cast<double>(ds.shared_hits));
            w.kv("bytesElided",
                 static_cast<double>(ds.bytes_elided));
            w.kv("entries",
                 static_cast<double>(tier->entries(d)));
            w.kv("liveRefs",
                 static_cast<double>(tier->liveRefs(d)));
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }
    w.kv("invariantFailures",
         static_cast<double>(invariant_failures));
    w.endObject();
}

} // namespace vstream
