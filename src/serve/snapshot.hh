/**
 * @file
 * ShardSnapshot: the deterministic checkpoint of one shard.
 *
 * Crash recovery (serve/chaos.hh, serve/placer.hh) needs a frozen
 * copy of a shard's durable state it can restore byte-exactly.  A
 * shard's durable state is deliberately tiny: the tick the checkpoint
 * was taken at, the number of session outcomes absorbed so far, and
 * the mergeable StatsSnapshot those outcomes were folded into.
 * Reservations and slices are *not* checkpointed - they describe
 * in-flight sessions, which a crash by definition loses; the Placer
 * reconstructs them during failover.
 *
 * Because every field of the stats snapshot is integer-exact
 * (sim/stats_snapshot.hh), serialize -> deserialize -> serialize is
 * bit-identical, and a restored shard merges exactly like the
 * original: the foundation of the "recovered report equals the
 * unfailed report" guarantee (tests/test_chaos.cc).
 *
 * Wire format (little-endian; sim/byte_io.hh):
 *   magic "VSSS" | u32 version (1) | u64 tick | u64 absorbed |
 *   StatsSnapshot payload
 * Trailing bytes after the payload are rejected: a checkpoint is a
 * whole document, not a stream element.
 */

#ifndef VSTREAM_SERVE_SNAPSHOT_HH
#define VSTREAM_SERVE_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats_snapshot.hh"
#include "sim/ticks.hh"

namespace vstream
{

/** Frozen durable state of one shard at a checkpoint boundary. */
struct ShardSnapshot
{
    /** Virtual tick the checkpoint was taken at. */
    Tick tick = 0;
    /** Outcomes absorbed into @ref stats when it was taken. */
    std::uint64_t absorbed = 0;
    /** The shard's mergeable stats at that point. */
    StatsSnapshot stats;

    bool operator==(const ShardSnapshot &other) const = default;
};

/** Serialize @p snap into a self-contained byte document. */
std::vector<std::uint8_t>
serializeShardSnapshot(const ShardSnapshot &snap);

/**
 * Parse a byte document produced by serializeShardSnapshot.
 * Fail-closed: false with a diagnostic in @p error on a bad magic,
 * unknown version, truncation, or trailing bytes; @p out is then
 * unchanged.
 */
bool tryDeserializeShardSnapshot(const std::uint8_t *data,
                                 std::size_t size, ShardSnapshot &out,
                                 std::string &error);

} // namespace vstream

#endif // VSTREAM_SERVE_SNAPSHOT_HH
