#include "serve/shared_mach.hh"

#include <cerrno>
#include <cstdlib>

#include "sim/logging.hh"
#include "video/pixel_kernels.hh"

namespace vstream
{

std::uint64_t
DedupRecord::totalWrites() const
{
    std::uint64_t n = 0;
    for (const DedupBlock &b : blocks) {
        n += b.writes;
    }
    return n;
}

void
DedupRecorder::observe(std::uint32_t digest, std::uint16_t aux,
                       const std::vector<std::uint8_t> &truth)
{
    const std::uint64_t key = dedupKey(digest, aux);
    if (const std::uint32_t *idx = index_.find(key)) {
        DedupBlock &b = rec_.blocks[*idx];
        if (!blockEqual(b.truth, truth)) {
            // Organic collision inside one session: two different
            // blocks share a (digest, aux).  Citing either from the
            // shared tier would be a latent false hit, so neither is
            // offered for dedup.
            ++rec_.skipped_collisions;
            return;
        }
        ++b.writes;
        return;
    }
    index_[key] =
        static_cast<std::uint32_t>(rec_.blocks.size());
    DedupBlock b;
    b.digest = digest;
    b.aux = aux;
    b.writes = 1;
    b.truth = truth;
    rec_.blocks.push_back(std::move(b));
}

DedupRecord
DedupRecorder::take()
{
    DedupRecord out = std::move(rec_);
    rec_ = DedupRecord{};
    index_.clear();
    return out;
}

namespace
{

/** Plain digits only; see tryParseCount in serve/chaos.cc. */
bool
tryParseCount(const std::string &value, std::uint64_t &out,
              std::string &error)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
        error = "bad count '" + value + "'";
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE || end != value.c_str() + value.size()) {
        error = "count '" + value + "' out of range";
        return false;
    }
    out = v;
    return true;
}

bool
tryParseRate(const std::string &value, double &out, std::string &error)
{
    char *end = nullptr;
    const double r = std::strtod(value.c_str(), &end);
    // Inclusive-range form is false for NaN.
    if (end == value.c_str() || *end != '\0' ||
        !(r >= 0.0 && r <= 1.0)) {
        error = "bad rate '" + value + "' (need [0, 1])";
        return false;
    }
    out = r;
    return true;
}

} // namespace

bool
tryParseDedupPoisonRule(const std::string &spec, DedupPoisonRule &out,
                        std::string &error)
{
    DedupPoisonRule rule;
    bool have_rate = false;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) {
            comma = spec.size();
        }
        const std::string field = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (field.empty()) {
            continue;
        }
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
            error = "field '" + field + "' is not key=value";
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        bool ok = true;
        if (key == "domain") {
            std::uint64_t d = 0;
            ok = tryParseCount(value, d, error);
            if (ok && d > 0xffffffffULL) {
                error = "domain '" + value + "' out of range";
                return false;
            }
            if (ok) {
                rule.domain = static_cast<std::uint32_t>(d);
            }
        } else if (key == "rate") {
            ok = tryParseRate(value, rule.rate, error);
            have_rate = true;
        } else if (key == "seed") {
            ok = tryParseCount(value, rule.seed, error);
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
        if (!ok) {
            return false;
        }
    }

    if (!have_rate) {
        error = "poison rule needs rate=F";
        return false;
    }
    out = rule;
    return true;
}

DedupPoisonRule
parseDedupPoisonRule(const std::string &spec)
{
    DedupPoisonRule rule;
    std::string error;
    if (!tryParseDedupPoisonRule(spec, rule, error)) {
        vs_fatal("dedup poison spec '", spec, "': ", error);
    }
    return rule;
}

bool
DedupSettle::any() const
{
    return shared_hits != 0 || self_hits != 0 || bytes_elided != 0 ||
           unique_published != 0 || false_hits != 0 ||
           blocked_writes != 0;
}

DedupSettle &
DedupSettle::operator+=(const DedupSettle &o)
{
    shared_hits += o.shared_hits;
    self_hits += o.self_hits;
    bytes_elided += o.bytes_elided;
    unique_published += o.unique_published;
    false_hits += o.false_hits;
    blocked_writes += o.blocked_writes;
    return *this;
}

DedupDomainStats &
DedupDomainStats::operator+=(const DedupDomainStats &o)
{
    // Epoch is structural, not additive: totals report the max.
    epoch = epoch > o.epoch ? epoch : o.epoch;
    trips += o.trips;
    consults += o.consults;
    false_hits += o.false_hits;
    shared_hits += o.shared_hits;
    self_hits += o.self_hits;
    bytes_elided += o.bytes_elided;
    unique_published += o.unique_published;
    blocked_writes += o.blocked_writes;
    return *this;
}

SharedMachTier::SharedMachTier(const DedupConfig &cfg,
                               std::uint32_t domains)
    : cfg_(cfg)
{
    vs_assert(domains >= 1, "shared tier needs >= 1 domain");
    vs_assert(cfg_.breaker_window >= 1,
              "dedup breaker window must be >= 1");
    vs_assert(cfg_.breaker_false_hits >= 1,
              "dedup breaker threshold must be >= 1");
    domains_.resize(domains);
    for (const DedupPoisonRule &rule : cfg_.poison) {
        vs_assert(rule.domain < domains,
                  "dedup poison rule targets a missing domain");
        vs_assert(rule.rate >= 0.0 && rule.rate <= 1.0,
                  "dedup poison rate outside [0, 1]");
        domains_[rule.domain].poison = rule;
    }
}

SharedMachTier::Domain &
SharedMachTier::domainAt(std::uint32_t domain)
{
    vs_assert(domain < domains_.size(),
              "dedup domain out of range");
    return domains_[domain];
}

const SharedMachTier::Domain &
SharedMachTier::domainAt(std::uint32_t domain) const
{
    vs_assert(domain < domains_.size(),
              "dedup domain out of range");
    return domains_[domain];
}

void
SharedMachTier::tripBreaker(Domain &d)
{
    ++d.stats.trips;
    ++d.stats.epoch;
    d.window_consults = 0;
    d.window_false = 0;
    d.cooldown_left = cfg_.quarantine_consults;
    // Unreferenced entries reclaim immediately; referenced ones are
    // now stale (unciteable) and drain via release().
    for (auto it = d.resident.begin(); it != d.resident.end();) {
        if (it->second.refs == 0) {
            it = d.resident.erase(it);
        } else {
            ++it;
        }
    }
}

DedupSettle
SharedMachTier::publish(std::uint32_t domain, const DedupRecord &rec,
                        DedupLease &lease)
{
    Domain &d = domainAt(domain);
    lease.domain = domain;
    DedupSettle settle;

    for (const DedupBlock &b : rec.blocks) {
        const std::uint64_t size = b.truth.size();
        if (d.cooldown_left > 0) {
            // Quarantined: the domain ignores consults until the
            // cooldown drains; every write stays a real write.
            --d.cooldown_left;
            settle.blocked_writes += b.writes;
            d.stats.blocked_writes += b.writes;
            continue;
        }
        ++d.stats.consults;
        if (++d.window_consults > cfg_.breaker_window) {
            d.window_consults = 1;
            d.window_false = 0;
        }

        std::uint64_t key = dedupKey(b.digest, b.aux);
        if (d.poison.rate > 0.0 && d.have_last_insert &&
            d.last_insert != key) {
            // Deterministic injected collision: forge the key onto
            // the most recently published entry.  If its bytes
            // differ, verify-on-hit must catch it.
            const std::uint64_t draw = mixHash(
                d.poison.seed ^ mixHash(key) ^
                (d.stats.consults * 0x9e3779b97f4a7c15ULL));
            const double x =
                static_cast<double>(draw >> 11) * 0x1.0p-53;
            if (x < d.poison.rate) {
                key = d.last_insert;
            }
        }

        auto it = d.resident.find(key);
        if (it != d.resident.end() &&
            it->second.epoch == d.stats.epoch) {
            if (blockEqual(it->second.truth, b.truth)) {
                // Verified shared hit: every write of this block is
                // elided from the DRAM accounting.
                settle.shared_hits += b.writes;
                settle.bytes_elided += b.writes * size;
                d.stats.shared_hits += b.writes;
                d.stats.bytes_elided += b.writes * size;
                ++it->second.refs;
                lease.keys.push_back(
                    DedupLeaseKey{key, it->second.epoch});
            } else {
                // Verify-on-hit byte compare failed: fail closed (no
                // citation, no insert) and feed the breaker.
                ++settle.false_hits;
                ++d.stats.false_hits;
                if (++d.window_false >= cfg_.breaker_false_hits) {
                    tripBreaker(d);
                }
            }
        } else if (it != d.resident.end()) {
            // The slot holds a stale-epoch entry still draining its
            // refs; nothing can publish or cite here until it
            // reclaims.
            settle.blocked_writes += b.writes;
            d.stats.blocked_writes += b.writes;
        } else {
            Entry e;
            e.truth = b.truth;
            e.epoch = d.stats.epoch;
            e.refs = 1;
            d.resident.emplace(key, std::move(e));
            lease.keys.push_back(DedupLeaseKey{key, d.stats.epoch});
            ++settle.unique_published;
            ++d.stats.unique_published;
            // The session's own repeat writes of this block are
            // elided against its fresh entry.
            settle.self_hits += b.writes - 1;
            settle.bytes_elided += (b.writes - 1) * size;
            d.stats.self_hits += b.writes - 1;
            d.stats.bytes_elided += (b.writes - 1) * size;
            d.have_last_insert = true;
            d.last_insert = key;
        }
    }
    return settle;
}

void
SharedMachTier::release(const DedupLease &lease)
{
    Domain &d = domainAt(lease.domain);
    for (const DedupLeaseKey &lk : lease.keys) {
        auto it = d.resident.find(lk.key);
        if (it == d.resident.end() ||
            it->second.epoch != lk.epoch) {
            // Wiped (crash) or replaced under a newer epoch: the
            // lease was voided with the entry.
            continue;
        }
        vs_assert(it->second.refs > 0,
                  "dedup release underflows a refcount");
        --it->second.refs;
        if (it->second.refs == 0 &&
            it->second.epoch != d.stats.epoch) {
            // Quarantined epoch fully drained: reclaim.
            d.resident.erase(it);
        }
    }
}

void
SharedMachTier::republish(std::uint32_t domain,
                          const DedupRecord &rec)
{
    Domain &d = domainAt(domain);
    for (const DedupBlock &b : rec.blocks) {
        const std::uint64_t key = dedupKey(b.digest, b.aux);
        auto it = d.resident.find(key);
        if (it != d.resident.end()) {
            // First journal entry wins; a differing-content later
            // block stays out (fail closed).
            continue;
        }
        Entry e;
        e.truth = b.truth;
        e.epoch = d.stats.epoch;
        e.refs = 0;
        d.resident.emplace(key, std::move(e));
        d.have_last_insert = true;
        d.last_insert = key;
    }
}

void
SharedMachTier::wipeDomain(std::uint32_t domain)
{
    Domain &d = domainAt(domain);
    d.resident.clear();
    ++d.stats.epoch;
    d.window_consults = 0;
    d.window_false = 0;
    d.cooldown_left = 0;
    d.have_last_insert = false;
    d.last_insert = 0;
}

const DedupDomainStats &
SharedMachTier::domainStats(std::uint32_t domain) const
{
    return domainAt(domain).stats;
}

DedupDomainStats
SharedMachTier::totals() const
{
    DedupDomainStats total;
    for (const Domain &d : domains_) {
        total += d.stats;
    }
    return total;
}

std::uint64_t
SharedMachTier::entries(std::uint32_t domain) const
{
    return domainAt(domain).resident.size();
}

std::uint64_t
SharedMachTier::liveRefs(std::uint32_t domain) const
{
    std::uint64_t refs = 0;
    for (const auto &kv : domainAt(domain).resident) {
        refs += kv.second.refs;
    }
    return refs;
}

std::uint64_t
SharedMachTier::staleEntries(std::uint32_t domain) const
{
    const Domain &d = domainAt(domain);
    std::uint64_t n = 0;
    for (const auto &kv : d.resident) {
        if (kv.second.epoch != d.stats.epoch) {
            ++n;
        }
    }
    return n;
}

bool
SharedMachTier::quarantined(std::uint32_t domain) const
{
    return domainAt(domain).cooldown_left > 0;
}

void
SharedMachTier::resetStats()
{
    for (Domain &d : domains_) {
        const std::uint64_t epoch = d.stats.epoch;
        d.stats = DedupDomainStats{};
        d.stats.epoch = epoch;
    }
}

} // namespace vstream
