#include "serve/health.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vstream
{

const char *
healthStateName(HealthState s)
{
    switch (s) {
    case HealthState::kHealthy:
        return "healthy";
    case HealthState::kDegraded:
        return "degraded";
    case HealthState::kQuarantined:
        return "quarantined";
    case HealthState::kEvicted:
        return "evicted";
    }
    return "?";
}

void
HealthConfig::validate() const
{
    if (window_vsyncs == 0) {
        vs_fatal("health window must be >= 1 vsync");
    }
    if (quarantine_windows == 0 || recover_windows == 0 ||
        evict_windows == 0) {
        vs_fatal("health ladder window counts must be >= 1");
    }
    if (degrade_drops == 0 && degrade_underruns == 0) {
        vs_fatal("health ladder needs at least one degrade signal");
    }
}

void
HealthLadder::transitionTo(HealthState next, Tick now)
{
    vs_assert(!evicted(), "no ladder transitions out of Evicted");
    vs_assert(next != state_, "ladder transition to the same state");
    vs_assert(now >= entered_, "ladder transition into the past");
    dwell_[static_cast<std::size_t>(state_)] += now - entered_;
    state_ = next;
    entered_ = now;
    ++transitions_;
}

Tick
HealthLadder::dwell(HealthState s, Tick now) const
{
    Tick total = dwell_[static_cast<std::size_t>(s)];
    if (s == state_ && now > entered_) {
        total += now - entered_;
    }
    return total;
}

void
BreakerConfig::validate() const
{
    if (false_hit_threshold <= 0.0 || false_hit_threshold > 1.0) {
        vs_fatal("breaker threshold ", false_hit_threshold,
                 " outside (0, 1]");
    }
    if (jitter_frac < 0.0 || jitter_frac > 1.0) {
        vs_fatal("breaker jitter ", jitter_frac, " outside [0, 1]");
    }
    if (cooldown_base == 0 || cooldown_cap < cooldown_base) {
        vs_fatal("breaker cooldown cap must be >= base > 0");
    }
}

CircuitBreaker::CircuitBreaker(const BreakerConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

bool
CircuitBreaker::onWindow(std::uint64_t lookups,
                         std::uint64_t false_hits, Tick now,
                         Random &rng)
{
    if (!cfg_.enabled) {
        return false;
    }

    if (state_ == State::kOpen) {
        // Bypassed: samples carry no verification signal; wait the
        // cooldown out, then re-probe with MACH re-enabled.
        if (now >= reopen_at_) {
            state_ = State::kHalfOpen;
            ++reprobes_;
            return true;
        }
        return false;
    }

    const bool storm =
        lookups >= cfg_.min_lookups &&
        static_cast<double>(false_hits) >=
            cfg_.false_hit_threshold * static_cast<double>(lookups);
    if (storm) {
        trip(now, rng);
        return true;
    }
    if (state_ == State::kHalfOpen) {
        // The probe window came back clean: verification works
        // again, close the breaker.
        state_ = State::kClosed;
        return true;
    }
    return false;
}

void
CircuitBreaker::trip(Tick now, Random &rng)
{
    state_ = State::kOpen;
    ++trips_;

    // min(cap, base << (trips - 1)), shift guarded against blowing
    // past the cap, plus jitter from the session's own stream so
    // concurrent sessions never re-probe in lockstep.
    Tick cooldown = cfg_.cooldown_base;
    for (std::uint64_t k = 1; k < trips_; ++k) {
        if (cooldown >= cfg_.cooldown_cap / 2) {
            cooldown = cfg_.cooldown_cap;
            break;
        }
        cooldown *= 2;
    }
    cooldown = std::min(cooldown, cfg_.cooldown_cap);
    if (cfg_.jitter_frac > 0.0) {
        cooldown += static_cast<Tick>(static_cast<double>(cooldown) *
                                      cfg_.jitter_frac *
                                      rng.uniform());
    }
    reopen_at_ = now + cooldown;
}

const char *
breakerStateName(CircuitBreaker::State s)
{
    switch (s) {
    case CircuitBreaker::State::kClosed:
        return "closed";
    case CircuitBreaker::State::kOpen:
        return "open";
    case CircuitBreaker::State::kHalfOpen:
        return "halfOpen";
    }
    return "?";
}

} // namespace vstream
