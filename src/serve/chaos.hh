/**
 * @file
 * Fleet chaos: shard-scoped fault injection and the recovery ledger.
 *
 * PR 6's FaultInjector perturbs one session's pipeline; this file
 * scales the same discipline to the fleet.  Three fault classes hit
 * the serving layer itself:
 *
 *   - *crash*: a shard loses everything resident - its in-flight
 *     sessions and any stats absorbed since its last checkpoint.
 *     The Placer restores the last ShardSnapshot, deterministically
 *     replays the journaled finishes taken since, and fails the
 *     orphaned in-flight sessions over to surviving shards under the
 *     unchanged global budget.
 *   - *brownout*: a shard's placement slice is temporarily derated
 *     by a factor.  Slices are advisory (serve/shard.hh), so a
 *     brownout steers arrivals away without touching admission - it
 *     is stats-neutral by construction, like rebalancing.
 *   - *flood*: a flash crowd - a burst of extra arrivals injected
 *     into the schedule at a point in time, stressing the admission
 *     queue and the shedding ladder.
 *
 * Rules use the FaultInjector spec grammar (key=value, comma
 * separated; time suffixes ps/ns/us/ms/s, bare numbers are ms):
 *
 *   crash:    at=TIME,shard=N
 *   brownout: at=TIME,shard=N,len=TIME[,factor=F]
 *   flood:    at=TIME,count=N[,len=TIME][,mix=M]
 *
 * Everything here is deterministic data: rules are fixed points on
 * the virtual timeline, never random draws, so a chaos run is as
 * reproducible as a clean one.  With no rules and no checkpoint
 * period the chaos layer is completely inert and the fleet report is
 * byte-identical to the pre-chaos serving stack (the zero-cost-
 * when-off contract; docs/ROBUSTNESS.md, "Fleet fault tolerance").
 */

#ifndef VSTREAM_SERVE_CHAOS_HH
#define VSTREAM_SERVE_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/arrivals.hh"
#include "sim/ticks.hh"

namespace vstream
{

/** Fleet-level fault classes (shard- and schedule-scoped). */
enum class FleetFaultClass : std::uint8_t
{
    /** Shard loses resident state; recovered via checkpoint +
     * journal replay + failover. */
    kShardCrash = 0,
    /** Shard's placement slice temporarily derated (advisory). */
    kShardBrownout,
    /** Flash crowd: a burst of extra arrivals. */
    kFlashCrowd,
};

/** Stable lower-case name ("crash", "brownout", "flood"). */
const char *fleetFaultClassName(FleetFaultClass c);

/** One fleet fault, pinned to a point on the virtual timeline. */
struct FleetFaultRule
{
    FleetFaultClass cls = FleetFaultClass::kShardCrash;
    /** Tick the fault fires at. */
    Tick at = 0;
    /** Target shard (crash/brownout). */
    std::uint32_t shard = 0;
    /** Brownout length, or the window floods spread over. */
    Tick duration = 0;
    /** Brownout slice derating factor in (0, 1]. */
    double factor = 0.5;
    /** Flood arrival count. */
    std::uint64_t count = 0;
    /** Mix selector for flood arrivals. */
    std::uint32_t mix = 0;
};

/**
 * Parse @p spec (grammar in the file comment) into @p out.
 * Fail-closed: false with a diagnostic in @p error on any malformed
 * field; @p out is then unchanged.
 */
bool tryParseFleetFaultRule(FleetFaultClass cls,
                            const std::string &spec,
                            FleetFaultRule &out, std::string &error);

/** Parse @p spec or die with a message naming the bad field. */
FleetFaultRule parseFleetFaultRule(FleetFaultClass cls,
                                   const std::string &spec);

/** Fleet chaos + recovery configuration. */
struct ChaosConfig
{
    /**
     * Take a ShardSnapshot of every shard each this many ticks
     * (0 = only the implicit tick-0 checkpoint).  Shorter periods
     * bound replay work after a crash; longer periods bound
     * checkpoint overhead (docs/ROBUSTNESS.md discusses the
     * tradeoff).
     */
    Tick checkpoint_period = 0;
    /**
     * Shed arrivals outright once the admission queue holds this
     * many sessions (0 = never shed).  The fleet ladder reports
     * Shedding while the queue is at or past this depth.
     */
    std::uint64_t shed_depth = 0;
    /** Fault rules, applied at their `at` ticks. */
    std::vector<FleetFaultRule> rules;

    /** Any behaviour beyond the inert baseline configured? */
    bool
    enabled() const
    {
        return checkpoint_period > 0 || shed_depth > 0 ||
               !rules.empty();
    }

    bool anyRuleFor(FleetFaultClass c) const;

    /** Die on rules that cannot apply to a @p shards-wide fleet. */
    void validate(std::uint32_t shards) const;
};

/**
 * Fleet-level health, mirroring the per-session ladder shape
 * (serve/health.hh) one level up: the fleet degrades and recovers as
 * a unit instead of crashing.
 */
enum class FleetHealth : std::uint8_t
{
    /** All shards at full slices, queue below the shed depth. */
    kHealthy = 0,
    /** At least one shard browned out. */
    kBrownedOut,
    /** Admission queue at the shed depth; arrivals are dropped. */
    kShedding,
};

constexpr std::size_t kNumFleetHealthStates = 3;

/** Stable lower-case name ("healthy", "brownedOut", "shedding"). */
const char *fleetHealthName(FleetHealth s);

/** Dwell/transition bookkeeping for the fleet ladder (same shape as
 * HealthLadder; policy lives in the Placer). */
class FleetLadder
{
  public:
    FleetHealth state() const { return state_; }

    /** Move to @p next at time @p now, closing the current dwell. */
    void transitionTo(FleetHealth next, Tick now);

    std::uint64_t transitions() const { return transitions_; }

    /** Total ticks spent in @p s; @p now closes the open dwell. */
    Tick dwell(FleetHealth s, Tick now) const;

  private:
    FleetHealth state_ = FleetHealth::kHealthy;
    Tick entered_ = 0;
    std::uint64_t transitions_ = 0;
    Tick dwell_[kNumFleetHealthStates] = {};
};

/** The recovery ledger: what the chaos layer did to this run.  All
 * zero on a clean run, which is what keeps the chaos-off report
 * byte-identical (the `recovery` block is emitted only when any()
 * is true; docs/FORMATS.md). */
struct RecoveryTotals
{
    std::uint64_t crashes = 0;
    std::uint64_t brownouts = 0;
    /** Outcomes restored from the last checkpoint at a crash. */
    std::uint64_t restored = 0;
    /** Journaled finishes replayed on top of the checkpoint. */
    std::uint64_t replayed = 0;
    /** In-flight sessions re-homed to surviving shards. */
    std::uint64_t failed_over = 0;
    /** Arrivals shed at the queue-depth limit. */
    std::uint64_t shed = 0;
    /** Queued sessions expired past the admission deadline. */
    std::uint64_t queue_timeouts = 0;

    bool
    any() const
    {
        return crashes || brownouts || restored || replayed ||
               failed_over || shed || queue_timeouts;
    }

    bool operator==(const RecoveryTotals &other) const = default;
};

/**
 * Merge every flood rule's burst into @p base: rule `i`'s `count`
 * arrivals spread evenly over [at, at + len], ids sequential after
 * the largest base id, mix from the rule.  The result is sorted
 * stably by tick, so base arrivals keep their relative order.
 * Harnesses call this *before* Placer::run - the flood is part of
 * the offered load, so whale accounting and arrival totals see it.
 * With no flood rules, returns @p base unchanged.
 */
std::vector<ArrivalEvent>
withFlashCrowds(std::vector<ArrivalEvent> base,
                const ChaosConfig &chaos);

} // namespace vstream

#endif // VSTREAM_SERVE_CHAOS_HH
