#include "serve/shard.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vstream
{

namespace
{

/** Whole microseconds of @p t (histogram unit for dwell/span). */
std::uint64_t
ticksToUs(Tick t)
{
    return t / sim_clock::us;
}

} // namespace

void
Shard::setSlices(double bw_mbps, double fb_bytes)
{
    vs_assert(bw_mbps > 0.0 && fb_bytes > 0.0,
              "shard slices must be positive");
    bw_slice_ = bw_mbps;
    fb_slice_ = fb_bytes;
}

void
Shard::reserve(double bw_mbps, std::uint64_t fb_bytes)
{
    bw_reserved_ += bw_mbps;
    fb_reserved_ += fb_bytes;
    ++active_;
}

void
Shard::release(double bw_mbps, std::uint64_t fb_bytes)
{
    vs_assert(active_ > 0, "releasing on an idle shard");
    vs_assert(fb_reserved_ >= fb_bytes,
              "shard frame-buffer reservation underflow");
    bw_reserved_ -= bw_mbps;
    fb_reserved_ -= fb_bytes;
    --active_;
}

void
Shard::setBrownoutFactor(double f)
{
    vs_assert(f > 0.0 && f <= 1.0,
              "brownout factor outside (0, 1]");
    brownout_factor_ = f;
}

double
Shard::load() const
{
    vs_assert(bw_slice_ > 0.0 && fb_slice_ > 0.0,
              "shard load() before setSlices()");
    // A brownout shrinks the *effective* slice, inflating apparent
    // load; since slices only weight placement, this steers
    // arrivals away without touching admission.
    const double bw = bw_reserved_ / (bw_slice_ * brownout_factor_);
    const double fb = static_cast<double>(fb_reserved_) /
                      (fb_slice_ * brownout_factor_);
    return std::max(bw, fb);
}

void
Shard::crashReset()
{
    bw_reserved_ = 0.0;
    fb_reserved_ = 0;
    active_ = 0;
    absorbed_ = 0;
    snapshot_ = StatsSnapshot{};
}

void
Shard::restore(const StatsSnapshot &stats, std::uint64_t absorbed)
{
    snapshot_ = stats;
    absorbed_ = absorbed;
}

void
Shard::absorb(const SessionOutcome &o)
{
    ++absorbed_;
    StatsSnapshot &s = snapshot_;
    s.addCount("sessions");
    s.addCount(std::string("state.") +
               healthStateName(o.final_state));
    s.addCount("breaker.trips", o.breaker_trips);
    s.addCount("breaker.reprobes", o.breaker_reprobes);
    if (o.breaker_trips > 0 &&
        o.breaker_state == CircuitBreaker::State::kClosed) {
        s.addCount("breaker.recoveredSessions");
    }
    if (o.left_early) {
        s.addCount("leftEarly");
    }
    if (o.trace_error != TraceError::kNone) {
        s.addCount("traceDamaged");
    }
    s.addCount("drops", o.result.drops);
    s.addCount("underruns", o.result.underruns);
    s.addCount("faults.injected", o.result.faults.injected);
    s.addCount("faults.recovered", o.result.faults.recovered);
    s.addCount("faults.abandoned", o.result.faults.abandoned);
    s.addScalar("energyJ", o.result.totalEnergy());

    static const char *const kDwellNames[kNumHealthStates] = {
        "dwellUs.healthy", "dwellUs.degraded",
        "dwellUs.quarantined", "dwellUs.evicted"};
    for (std::size_t st = 0; st < kNumHealthStates; ++st) {
        s.hist(kDwellNames[st]).record(ticksToUs(o.dwell[st]));
    }
    vs_assert(o.end_tick >= o.start_offset,
              "session finished before it started");
    s.hist("spanUs").record(ticksToUs(o.end_tick - o.start_offset));

    if (!o.group.empty()) {
        const std::string p = "mix." + o.group + ".";
        s.addCount(p + "sessions");
        if (o.final_state == HealthState::kEvicted) {
            s.addCount(p + "evicted");
        }
        s.addCount(p + "breakerTrips", o.breaker_trips);
        s.addScalar(p + "energyJ", o.result.totalEnergy());
    }
}

void
Shard::absorbDedup(const DedupSettle &d)
{
    // Unconditional adds: a clean session contributes zeros, and the
    // zero counters are what makes "no dedup activity" visible in a
    // dedup-on report.  (Dedup-off runs never reach this function at
    // all, so their snapshots carry no dedup.* keys.)
    StatsSnapshot &s = snapshot_;
    s.addCount("dedup.sharedHits", d.shared_hits);
    s.addCount("dedup.selfHits", d.self_hits);
    s.addCount("dedup.bytesElided", d.bytes_elided);
    s.addCount("dedup.uniquePublished", d.unique_published);
    s.addCount("dedup.falseHits", d.false_hits);
    s.addCount("dedup.blockedWrites", d.blocked_writes);
}

void
Shard::foldDedupDomain(const DedupDomainStats &st,
                       std::uint64_t entries,
                       std::uint64_t live_refs, std::uint32_t domain)
{
    StatsSnapshot &s = snapshot_;
    const std::string p =
        "dedup.domain." + std::to_string(domain) + ".";
    s.addCount(p + "epoch", st.epoch);
    s.addCount(p + "trips", st.trips);
    s.addCount(p + "consults", st.consults);
    s.addCount(p + "falseHits", st.false_hits);
    s.addCount(p + "sharedHits", st.shared_hits);
    s.addCount(p + "selfHits", st.self_hits);
    s.addCount(p + "bytesElided", st.bytes_elided);
    s.addCount(p + "uniquePublished", st.unique_published);
    s.addCount(p + "blockedWrites", st.blocked_writes);
    s.addCount(p + "entries", entries);
    s.addCount(p + "liveRefs", live_refs);
}

} // namespace vstream
