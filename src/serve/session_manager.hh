/**
 * @file
 * Multi-session server core.
 *
 * The SessionManager runs N concurrent streaming sessions over one
 * shared timeline: every admitted session is driven by its own event
 * on a shared EventQueue, stepping one vsync at absolute tick
 * start_offset + local vsync tick, so sessions interleave
 * deterministically (tick, priority, insertion order) regardless of
 * how many run at once.
 *
 * Admission control guards two aggregate budgets - estimated DRAM
 * bandwidth and frame-buffer pool bytes - plus a hard cap on active
 * sessions.  Over-budget submissions are queued (admitted as
 * finishing sessions release budget) or rejected when they could
 * never fit.  Each session is its own fault domain: trace damage,
 * arrival-stall storms, DRAM abandon-budget exhaustion, and MACH
 * false-hit storms degrade, quarantine, or evict only that session
 * (serve/health.hh) while neighbours keep bit-identical results.
 */

#ifndef VSTREAM_SERVE_SESSION_MANAGER_HH
#define VSTREAM_SERVE_SESSION_MANAGER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/flat_table.hh"
#include "serve/session.hh"
#include "serve/shared_mach.hh"
#include "sim/event_queue.hh"

namespace vstream
{

class StatsRegistry;

/** Aggregate budgets guarded at admission. */
struct ServeConfig
{
    /** Aggregate DRAM-bandwidth budget, MB/s (estimated demand of
     * all active sessions must stay below this). */
    double bandwidth_budget_mbps = 2000.0;
    /** Aggregate frame-buffer pool budget, bytes. */
    std::uint64_t framebuffer_budget_bytes = 64ULL << 20;
    /** Hard cap on concurrently active sessions. */
    std::uint32_t max_active = 64;
    /** Queue over-budget submissions instead of rejecting them
     * (sessions that could never fit are always rejected). */
    bool queue_when_full = true;
    /**
     * Admission-queue deadline in ticks (0 = wait forever, the
     * legacy behaviour).  A session still queued this long after
     * submission expires with a queue_timeout outcome instead of
     * occupying the waitlist indefinitely - the bound the
     * bounded-queue lint (tools/vstream_analyze) checks for.
     * Shared by the fleet Placer (FleetConfig::serve).
     */
    Tick queue_deadline = 0;

    void validate() const;
};

/** Outcome of one submit() call. */
enum class Admission : std::uint8_t
{
    kAdmitted = 0,
    kQueued,
    kRejected,
};

// SessionOutcome lives in serve/session.hh (shared with the fleet
// Placer, which aggregates outcomes without a SessionManager).

/** Admission control + shared-timeline driver + fault domains. */
class SessionManager
{
  public:
    explicit SessionManager(ServeConfig cfg);
    ~SessionManager();

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /**
     * Submit a session.
     *
     * Admitted sessions start at the current tick; queued ones start
     * when enough budget frees up.
     */
    Admission submit(SessionConfig cfg);

    /**
     * Rehearse @p cfgs across up to @p jobs worker threads before
     * they are submitted (the parallel soak path).
     *
     * Each rehearsal runs the session to completion detached at
     * offset 0 on its own private substrate; when the session is
     * later admitted, activate() replays the recorded outcome with
     * one completion event instead of stepping vsync-by-vsync.  A
     * session's evolution is offset-invariant - the breaker cooldown
     * and ladder dwell are tick *differences*, and the pipeline runs
     * on its own local clock - so a replayed outcome is identical to
     * a live one, and every aggregate the soak report emits is
     * byte-identical at any job count (the CI perf-smoke job asserts
     * this).  Admission control is untouched: budgets, queueing and
     * rejection still play out on the shared timeline.
     */
    void precompute(const std::vector<SessionConfig> &cfgs,
                    unsigned jobs);

    /** Drive every admitted (and eventually queued) session to
     * completion or eviction. */
    void runAll();

    /** Finished sessions, in completion order. */
    const std::vector<SessionOutcome> &outcomes() const
    {
        return outcomes_;
    }

    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t rejected() const { return rejected_; }
    std::uint64_t queuedTotal() const { return queued_; }
    std::uint64_t evicted() const { return evicted_; }
    /** Queued sessions expired past ServeConfig::queue_deadline. */
    std::uint64_t queueTimeouts() const { return queue_timeouts_; }
    std::uint64_t breakerTrips() const { return breaker_trips_; }
    std::size_t activeCount() const { return active_.size(); }
    std::size_t waitingCount() const { return waiting_.size(); }

    /** Estimated bandwidth currently reserved, MB/s. */
    double bandwidthReservedMBps() const { return bw_reserved_; }
    /** Frame-buffer bytes currently reserved. */
    std::uint64_t framebufferReservedBytes() const
    {
        return fb_reserved_;
    }

    Tick curTick() const { return queue_.curTick(); }
    const ServeConfig &config() const { return cfg_; }

    /**
     * Attach a shared MACH dedup tier (single-mode serving: the
     * whole manager is one fault domain, @p domain).  Sessions whose
     * config sets dedup_record have their materialization log
     * settled against the tier when they finish; because a
     * single-domain manager has no cross-session lease lifetime to
     * model, the refs are released immediately after settling.
     * Call before regStats() so the serve.dedup.* counters register.
     */
    void setDedup(SharedMachTier *tier, std::uint32_t domain = 0);

    /** Settled dedup totals across finished sessions (zeros until a
     * tier is attached and a recording session finishes). */
    const DedupSettle &dedupTotals() const { return dedup_totals_; }

    /** Register serve.* counters (admitted/rejected/queued/...). */
    void regStats(StatsRegistry &r);

    /** Zero the admission counters; live gauges (reservations,
     * active count) are untouched. */
    void resetStats();

  private:
    struct Active
    {
        std::unique_ptr<Session> session; // null in replay mode
        std::unique_ptr<LambdaEvent> event;
        double bw_mbps = 0.0;
        std::uint64_t fb_bytes = 0;
        std::uint64_t sid = 0;
        Tick start_offset = 0;
        /** Replaying a precompute() rehearsal instead of stepping a
         * live session. */
        bool replay = false;
        SessionOutcome outcome; // rehearsed outcome (replay only)
    };

    /** One queued submission plus its deadline base. */
    struct Waiting
    {
        SessionConfig cfg;
        /** Tick it entered the queue; expires at enqueue +
         * ServeConfig::queue_deadline. */
        Tick enqueue = 0;
    };

    bool fits(double bw_mbps, std::uint64_t fb_bytes) const;
    bool couldEverFit(double bw_mbps, std::uint64_t fb_bytes) const;
    void activate(SessionConfig cfg, Tick start_offset);
    void stepActive(std::size_t slot);
    void finalizeActive(std::size_t slot);
    void drainWaiting();
    /** Deadline of @p w (maxTick when unbounded / saturated). */
    Tick queueDeadlineOf(const Waiting &w) const;
    /** (Re)point the deadline timer at the queue front. */
    void armQueueTimer();
    /** Timer callback: expire every overdue front entry. */
    void expireWaiting();

    ServeConfig cfg_;
    EventQueue queue_;
    std::vector<Active> active_;
    /** Finished Active records parked until runAll() returns (an
     * event must not destroy itself mid-process()). */
    std::vector<Active> retired_;
    /** FIFO admission queue; the front expires once queued past
     * ServeConfig::queue_deadline (see expireWaiting). */
    std::deque<Waiting> waiting_;
    /** Single deadline timer, re-aimed at the queue front.  Stats
     * priority: same-tick finishes (vsync priority) run first, so
     * an admission wins the tie with the deadline. */
    std::unique_ptr<LambdaEvent> queue_timer_;
    std::vector<SessionOutcome> outcomes_;
    /** Rehearsals by session id, consumed (erased) at activation.
     * Never iterated, so the unordered probe order of the flat table
     * cannot leak into output. */
    FlatMap<std::uint64_t, RehearsedSession> rehearsed_;

    /** Optional shared dedup tier (not owned; single fault domain).
     * Touched only from finalizeActive on the serial timeline. */
    // vstream:shard_local
    SharedMachTier *dedup_tier_ = nullptr;
    std::uint32_t dedup_domain_ = 0;
    /** Sum of every finished session's settle outcome. */
    DedupSettle dedup_totals_;

    double bw_reserved_ = 0.0;
    std::uint64_t fb_reserved_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t queued_ = 0;
    std::uint64_t evicted_ = 0;
    std::uint64_t breaker_trips_ = 0;
    std::uint64_t queue_timeouts_ = 0;
};

} // namespace vstream

#endif // VSTREAM_SERVE_SESSION_MANAGER_HH
