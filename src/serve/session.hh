/**
 * @file
 * One streaming session inside the multi-session server.
 *
 * A Session owns a full, private pipeline substrate (its own
 * VideoPipeline with its own memory system, fault-rule set, and
 * arrival timeline) plus the health machinery that contains its
 * failures: the degradation ladder and the MACH circuit breaker.
 * Because the substrate is private, a no-fault session produces
 * energy/drop numbers bit-identical to a solo VideoPipeline run with
 * the same PipelineConfig, no matter how many neighbours it is
 * interleaved with - the isolation property tests/test_serve.cc
 * pins down.
 *
 * The SessionManager drives the session one vsync at a time at
 * absolute tick start_offset + local vsync tick; every
 * HealthConfig::window_vsyncs vsyncs the session evaluates its
 * window counters (drops, underruns, DRAM abandons, MACH false
 * hits) and walks the ladder / trips the breaker.
 */

#ifndef VSTREAM_SERVE_SESSION_HH
#define VSTREAM_SERVE_SESSION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/video_pipeline.hh"
#include "serve/health.hh"
#include "serve/shared_mach.hh"
#include "video/trace.hh"

namespace vstream
{

/** Everything needed to run one session under the manager. */
struct SessionConfig
{
    /** Unique id; also the label in stats and the soak report. */
    std::uint64_t id = 0;
    /** The session's own video/scheme/faults/arrival bundle.  Use
     * FaultConfig::forSession(id) when deriving many sessions from
     * one schedule so their fault streams are independent. */
    PipelineConfig pipeline;
    HealthConfig health;
    BreakerConfig breaker;
    /** Optional serialized ingest trace validated at start: damage
     * quarantines (kFailClean) or degrades (kSkipFrame with skipped
     * frames) only this session. */
    std::vector<std::uint8_t> trace_blob;
    TracePolicy trace_policy = TracePolicy::kFailClean;
    /** Viewer departure: the session ends once its next vsync would
     * land at or past this *local* tick (0 = watch to the end).
     * Drives mid-simulation leave in the fleet arrival process. */
    Tick leave_after = 0;
    /** Aggregation label for fleet stats (e.g. the soak mix name);
     * empty sessions fold only into the unlabelled totals. */
    std::string stats_group;
    /** Record distinct materialized MACH blocks during the run so
     * the shared dedup tier can settle them serially at admission
     * (serve/shared_mach.hh).  Off by default: with recording off
     * the session is byte-identical to pre-dedup builds. */
    bool dedup_record = false;
};

/** Everything a soak/fleet report needs from one finished session. */
struct SessionOutcome
{
    std::uint64_t id = 0;
    HealthState final_state = HealthState::kHealthy;
    TraceError trace_error = TraceError::kNone;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_reprobes = 0;
    /** Breaker state at the end of the session (a tripped session
     * that ends kClosed recovered after its cooldown). */
    CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
    /** Ticks dwelt in each ladder state. */
    std::array<Tick, kNumHealthStates> dwell{};
    /** The viewer left (SessionConfig::leave_after) before playback
     * finished or the ladder evicted. */
    bool left_early = false;
    /** Expired in the admission queue (ServeConfig::queue_deadline)
     * without ever running; only id/group/ticks are meaningful. */
    bool queue_timeout = false;
    /** Aggregation label copied from SessionConfig::stats_group. */
    std::string group;
    Tick start_offset = 0;
    Tick end_tick = 0;
    PipelineResult result;
    /** The materialization log recorded during the run (empty when
     * SessionConfig::dedup_record is off); settled against the
     * shared tier by the placer / session manager. */
    DedupRecord dedup;
};

/** One admitted streaming session. */
class Session
{
  public:
    explicit Session(SessionConfig cfg);

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Admit at absolute tick @p start_offset: allocate the
     * substrate and validate the ingest trace (if any). */
    void start(Tick start_offset);

    /** No more vsyncs wanted (playback complete, evicted, or the
     * viewer left per SessionConfig::leave_after). */
    bool done() const;

    /** done() because the viewer left, not because playback
     * completed or the ladder evicted. */
    bool leftEarly() const;

    /** Absolute tick of the next vsync (valid while !done()). */
    Tick nextTick() const;

    /** Process one vsync; on a window boundary, evaluate health. */
    void stepVsync();

    /** Close the playback (early when evicted) and cache the
     * result; idempotent. */
    void finalize(Tick now);

    const PipelineResult &result() const;

    std::uint64_t id() const { return cfg_.id; }
    HealthState health() const { return ladder_.state(); }
    const HealthLadder &ladder() const { return ladder_; }
    const CircuitBreaker &breaker() const { return breaker_; }
    /** Damage found in the ingest trace (kNone when intact). */
    TraceError traceError() const { return trace_error_; }
    /** Move the dedup materialization log out (empty when recording
     * was off). */
    DedupRecord takeDedup();
    Tick startOffset() const { return start_offset_; }
    const SessionConfig &config() const { return cfg_; }

    /** Estimated DRAM-bandwidth demand of @p cfg, MB/s (decode
     * writes + display reads at the nominal frame rate). */
    static double demandMBps(const PipelineConfig &cfg);

    /** Estimated frame-buffer pool footprint of @p cfg, bytes. */
    static std::uint64_t framebufferBytes(const PipelineConfig &cfg);

  private:
    void evaluateWindow(Tick now);

    SessionConfig cfg_;
    VideoPipeline pipeline_;
    HealthLadder ladder_;
    CircuitBreaker breaker_;
    /** Per-session write log; private to this session's (possibly
     * worker-thread) rehearsal. */
    DedupRecorder dedup_recorder_;
    /** The session's own jitter stream (breaker cooldowns). */
    Random rng_;
    Tick start_offset_ = 0;
    TraceError trace_error_ = TraceError::kNone;

    // window bookkeeping
    std::uint32_t vsyncs_ = 0;
    std::uint64_t last_drops_ = 0;
    std::uint64_t last_underruns_ = 0;
    std::uint64_t last_lookups_ = 0;
    std::uint64_t last_false_hits_ = 0;
    std::uint32_t degraded_streak_ = 0;
    std::uint32_t clean_streak_ = 0;
    std::uint32_t quarantined_windows_ = 0;

    bool started_ = false;
    bool finalized_ = false;
    PipelineResult result_;
};

/** A session run to completion detached at local tick 0. */
struct RehearsedSession
{
    SessionOutcome outcome;
    /** Local tick of the final vsync (0 when done at start). */
    Tick local_end = 0;
    /** Finished without stepping a single vsync. */
    bool immediate = false;
};

/**
 * Rehearse @p cfg: run the session to completion on its own private
 * substrate, detached at offset 0, and record the outcome.
 *
 * A session's evolution is offset-invariant - the breaker cooldown
 * and ladder dwell are tick *differences*, and the pipeline runs on
 * its own local clock - so a rehearsed outcome replayed at offset T
 * is identical to a live session admitted at T (after rebasing
 * start_offset/end_tick and the construction-to-admission Healthy
 * dwell).  SessionManager::precompute and the fleet Placer both
 * lean on this to fan rehearsals across parallelMap workers while
 * keeping every aggregate byte-identical at any --jobs count.
 */
RehearsedSession rehearseSession(const SessionConfig &cfg);

} // namespace vstream

#endif // VSTREAM_SERVE_SESSION_HH
