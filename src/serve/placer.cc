#include "serve/placer.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace vstream
{

void
FleetConfig::validate() const
{
    serve.validate();
    if (shards == 0) {
        vs_fatal("fleet needs at least one shard");
    }
    if (rehearse_block == 0) {
        vs_fatal("rehearse_block must be >= 1");
    }
    chaos.validate(shards);
}

Placer::Placer(FleetConfig cfg, SessionFactory factory)
    : cfg_(cfg), factory_(std::move(factory))
{
    cfg_.validate();
    vs_assert(factory_ != nullptr, "fleet needs a session factory");
    shards_.reserve(cfg_.shards);
    for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
        shards_.emplace_back(i);
    }
    // Equal slices to start; rebalance() re-weights them later.
    const double n = static_cast<double>(cfg_.shards);
    for (Shard &s : shards_) {
        s.setSlices(cfg_.serve.bandwidth_budget_mbps / n,
                    static_cast<double>(
                        cfg_.serve.framebuffer_budget_bytes) /
                        n);
    }
    next_rebalance_ = cfg_.rebalance_period;

    // Shared dedup tier: one fault domain per shard.  Off means the
    // tier is never constructed and nothing downstream can observe
    // it (zero-cost-when-off).
    if (cfg_.dedup.enabled) {
        dedup_ = std::make_unique<SharedMachTier>(cfg_.dedup,
                                                  cfg_.shards);
    }

    // Chaos wiring.  With no crash rules and no checkpoint period
    // the journals and checkpoints stay empty and none of the new
    // event sources ever fires: the layer is inert.
    journaling_ =
        cfg_.chaos.anyRuleFor(FleetFaultClass::kShardCrash);
    checkpointing_ =
        journaling_ || cfg_.chaos.checkpoint_period > 0;
    journals_.resize(cfg_.shards);
    checkpoints_.resize(cfg_.shards);
    brownout_depth_.assign(cfg_.shards, 0);
    if (cfg_.chaos.checkpoint_period > 0) {
        next_checkpoint_ = cfg_.chaos.checkpoint_period;
    }
    for (const FleetFaultRule &rule : cfg_.chaos.rules) {
        switch (rule.cls) {
          case FleetFaultClass::kShardCrash:
            chaos_events_.push_back(
                ChaosEvent{rule.at, ChaosEvent::Kind::kCrash,
                           rule.shard, 1.0});
            break;
          case FleetFaultClass::kShardBrownout:
            chaos_events_.push_back(
                ChaosEvent{rule.at,
                           ChaosEvent::Kind::kBrownoutStart,
                           rule.shard, rule.factor});
            chaos_events_.push_back(
                ChaosEvent{rule.at + rule.duration,
                           ChaosEvent::Kind::kBrownoutEnd,
                           rule.shard, 1.0});
            break;
          case FleetFaultClass::kFlashCrowd:
            // Floods enter through withFlashCrowds on the arrival
            // schedule, not through the event loop.
            break;
        }
    }
    // Stable: same-tick events apply in rule order.
    std::stable_sort(chaos_events_.begin(), chaos_events_.end(),
                     [](const ChaosEvent &a, const ChaosEvent &b) {
                         return a.tick < b.tick;
                     });
}

bool
Placer::fits(double bw_mbps, std::uint64_t fb_bytes) const
{
    // Global admission, same predicate as SessionManager::fits -
    // no term here may depend on the shard layout.
    return active_.size() < cfg_.serve.max_active &&
           bw_reserved_ + bw_mbps <=
               cfg_.serve.bandwidth_budget_mbps &&
           fb_reserved_ + fb_bytes <=
               cfg_.serve.framebuffer_budget_bytes;
}

bool
Placer::couldEverFit(double bw_mbps, std::uint64_t fb_bytes) const
{
    return bw_mbps <= cfg_.serve.bandwidth_budget_mbps &&
           fb_bytes <= cfg_.serve.framebuffer_budget_bytes;
}

std::uint32_t
Placer::pickShard() const
{
    // Least loaded; strict-less compare, so the lowest shard id
    // wins ties (the deterministic tie-break the invariance tests
    // rely on).
    std::uint32_t best = 0;
    double best_load = shards_[0].load();
    for (std::uint32_t i = 1; i < shards_.size(); ++i) {
        const double l = shards_[i].load();
        if (l < best_load) {
            best = i;
            best_load = l;
        }
    }
    return best;
}

std::uint32_t
Placer::pickSurvivor(std::uint32_t crashed) const
{
    std::uint32_t best = crashed == 0 ? 1 : 0;
    double best_load = shards_[best].load();
    for (std::uint32_t i = best + 1; i < shards_.size(); ++i) {
        if (i == crashed) {
            continue;
        }
        const double l = shards_[i].load();
        if (l < best_load) {
            best = i;
            best_load = l;
        }
    }
    return best;
}

void
Placer::rebalance()
{
    ++rebalances_;
    // Re-weight slices toward observed reservations, with a floor
    // so an idle shard keeps attracting arrivals.  Purely advisory:
    // slices weight pickShard() and nothing else, so this cannot
    // change admission, timing, or any emitted stat.
    double total_bw = 0.0;
    double total_fb = 0.0;
    for (const Shard &s : shards_) {
        total_bw += s.bwReservedMBps();
        total_fb += static_cast<double>(s.fbReservedBytes());
    }
    const double n = static_cast<double>(shards_.size());
    const double floor_frac = 0.5 / n;
    for (Shard &s : shards_) {
        const double bw_share =
            total_bw > 0.0 ? s.bwReservedMBps() / total_bw : 1.0 / n;
        const double fb_share =
            total_fb > 0.0
                ? static_cast<double>(s.fbReservedBytes()) / total_fb
                : 1.0 / n;
        s.setSlices(cfg_.serve.bandwidth_budget_mbps *
                        (floor_frac + 0.5 * bw_share),
                    static_cast<double>(
                        cfg_.serve.framebuffer_budget_bytes) *
                        (floor_frac + 0.5 * fb_share));
    }
}

Tick
Placer::frontDeadline() const
{
    const Tick dl = cfg_.serve.queue_deadline;
    const Tick enq = waiting_.front().enqueue;
    // Saturate: a deadline past the tick range never fires.
    return enq > maxTick - dl ? maxTick : enq + dl;
}

void
Placer::advanceTo(Tick t)
{
    vs_assert(t >= cur_tick_, "fleet timeline moved backwards");
    for (;;) {
        // Five event sources, ordered by (tick, source rank):
        // finish < queue-timeout < checkpoint < chaos < rebalance.
        // Finishes first so budget freed at T is visible to
        // everything else at T (an admission wins a tie with the
        // queue deadline); checkpoint-before-crash at the same tick
        // means the crash loses nothing.
        Tick best = maxTick;
        int kind = -1;
        if (!active_.empty()) {
            best = active_.top().tick;
            kind = 0;
        }
        if (cfg_.serve.queue_deadline > 0 && !waiting_.empty()) {
            const Tick dl = frontDeadline();
            if (dl < best) {
                best = dl;
                kind = 1;
            }
        }
        if (checkpointing_ && next_checkpoint_ < best) {
            best = next_checkpoint_;
            kind = 2;
        }
        if (next_chaos_ < chaos_events_.size() &&
            chaos_events_[next_chaos_].tick < best) {
            best = chaos_events_[next_chaos_].tick;
            kind = 3;
        }
        if (cfg_.rebalance_period > 0 && next_rebalance_ < best) {
            best = next_rebalance_;
            kind = 4;
        }
        if (kind < 0 || best > t) {
            break;
        }
        cur_tick_ = std::max(cur_tick_, best);
        switch (kind) {
          case 0:
            finishOne();
            break;
          case 1:
            expireFront();
            break;
          case 2:
            takeAllCheckpoints();
            next_checkpoint_ += cfg_.chaos.checkpoint_period;
            break;
          case 3:
            applyChaos(chaos_events_[next_chaos_++]);
            break;
          default:
            rebalance();
            next_rebalance_ += cfg_.rebalance_period;
            break;
        }
    }
    cur_tick_ = std::max(cur_tick_, t);
}

void
Placer::finishOne()
{
    const Finish f = active_.top();
    active_.pop();
    const auto it = live_.find(f.seq);
    vs_assert(it != live_.end(), "finish for unknown session");
    Live &l = it->second;
    shards_[l.shard].release(l.bw_mbps, l.fb_bytes);
    bw_reserved_ -= l.bw_mbps;
    vs_assert(fb_reserved_ >= l.fb_bytes,
              "fleet frame-buffer reservation underflow");
    fb_reserved_ -= l.fb_bytes;
    // Fold-at-finish: the outcome becomes durable shard state only
    // now, so a crash before this point cleanly unwinds the session
    // (it is failed over, not half-counted).  The fold is exact and
    // commutative, so the bytes cannot tell this apart from the
    // fold-at-admit order.
    shards_[l.shard].absorb(l.outcome);
    if (dedup_) {
        // Dedup accounting was settled at admit; it becomes durable
        // together with the outcome, and the session's tier refs
        // drop now that nothing cites them.
        shards_[l.shard].absorbDedup(l.dedup_settle);
        dedup_->release(l.dedup_lease);
    }
    if (journaling_) {
        JournalEntry e;
        e.arrival = l.arrival;
        e.start = l.start;
        if (dedup_) {
            e.dedup_settle = l.dedup_settle;
            e.dedup_blocks = std::move(l.outcome.dedup);
        }
        journals_[l.shard].push_back(std::move(e));
    }
    live_.erase(it);
    drainWaiting();
}

void
Placer::expireFront()
{
    // The front has the earliest enqueue tick (strict FIFO), hence
    // the earliest deadline; it timed out before budget freed.
    waiting_.pop_front();
    ++recovery_.queue_timeouts;
    updateFleetHealth();
}

void
Placer::takeCheckpoint(std::uint32_t shard)
{
    ShardSnapshot snap;
    snap.tick = cur_tick_;
    snap.absorbed = shards_[shard].absorbed();
    snap.stats = shards_[shard].snapshot();
    checkpoints_[shard] = serializeShardSnapshot(snap);
    // Everything up to here is inside the checkpoint; the journal
    // restarts empty.
    journals_[shard].clear();
}

void
Placer::takeAllCheckpoints()
{
    ++checkpoints_taken_;
    for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
        takeCheckpoint(i);
    }
}

void
Placer::applyChaos(const ChaosEvent &ev)
{
    switch (ev.kind) {
      case ChaosEvent::Kind::kCrash:
        crashShard(ev.shard);
        break;
      case ChaosEvent::Kind::kBrownoutStart:
        ++recovery_.brownouts;
        ++brownout_depth_[ev.shard];
        shards_[ev.shard].setBrownoutFactor(ev.factor);
        updateFleetHealth();
        break;
      case ChaosEvent::Kind::kBrownoutEnd:
        vs_assert(brownout_depth_[ev.shard] > 0,
                  "brownout end without a matching start");
        if (--brownout_depth_[ev.shard] == 0) {
            shards_[ev.shard].setBrownoutFactor(1.0);
        }
        updateFleetHealth();
        break;
    }
}

void
Placer::crashShard(std::uint32_t shard)
{
    ++recovery_.crashes;
    Shard &sh = shards_[shard];
    sh.crashReset();
    if (dedup_) {
        // The crashed shard's fault domain dies with it: every entry
        // drops, outstanding leases become void, and the epoch bump
        // makes the wipe observable.  Neighbour domains are
        // untouched - blast radius by construction.
        dedup_->wipeDomain(shard);
    }

    // Restore the last checkpoint *through the wire format*, so
    // every recovery exercises the real serialization path.
    vs_assert(!checkpoints_[shard].empty(),
              "shard crashed before the tick-0 checkpoint");
    ShardSnapshot snap;
    std::string error;
    if (!tryDeserializeShardSnapshot(checkpoints_[shard].data(),
                                     checkpoints_[shard].size(),
                                     snap, error)) {
        vs_panic("shard ", shard, " checkpoint corrupt: ", error);
    }
    sh.restore(snap.stats, snap.absorbed);
    recovery_.restored += snap.absorbed;

    // Replay the finishes journaled since that checkpoint.  The
    // factory is pure and rehearsal hermetic, so each replayed
    // outcome is bit-identical to the one the crash destroyed.
    for (const JournalEntry &e : journals_[shard]) {
        SessionConfig c = factory_(e.arrival);
        c.id = e.arrival.id;
        c.leave_after = e.arrival.leave_after;
        c.dedup_record = dedup_ != nullptr;
        RehearsedSession reh = rehearseSession(c);
        SessionOutcome o = std::move(reh.outcome);
        o.start_offset = e.start;
        o.end_tick = e.start + reh.local_end;
        o.dwell[static_cast<std::size_t>(HealthState::kHealthy)] +=
            e.start;
        sh.absorb(o);
        if (dedup_) {
            // Settlement depends on tier state at the *original*
            // admit, so replay re-absorbs the journaled settle
            // verbatim and rebuilds tier content stats-suppressed.
            sh.absorbDedup(e.dedup_settle);
            dedup_->republish(shard, e.dedup_blocks);
        }
        ++recovery_.replayed;
    }
    journals_[shard].clear();

    // Fail the orphaned in-flight sessions over to survivors.  The
    // crashed shard's reservations died with it; the survivors pick
    // them up, and the *global* reservation never moved - failover
    // cannot admit, reject or delay anyone.
    for (auto &[seq, l] : live_) {
        if (l.shard != shard) {
            continue;
        }
        const std::uint32_t to = pickSurvivor(shard);
        shards_[to].reserve(l.bw_mbps, l.fb_bytes);
        l.shard = to;
        ++recovery_.failed_over;
    }

    // Re-checkpoint immediately: a second crash of this shard must
    // restore to *this* state, not double-replay the old journal.
    takeCheckpoint(shard);
}

void
Placer::updateFleetHealth()
{
    if (!cfg_.chaos.enabled()) {
        return;
    }
    FleetHealth want = FleetHealth::kHealthy;
    if (cfg_.chaos.shed_depth > 0 &&
        waiting_.size() >= cfg_.chaos.shed_depth) {
        want = FleetHealth::kShedding;
    } else {
        for (const std::uint32_t depth : brownout_depth_) {
            if (depth > 0) {
                want = FleetHealth::kBrownedOut;
                break;
            }
        }
    }
    if (want != ladder_.state()) {
        ladder_.transitionTo(want, cur_tick_);
    }
}

void
Placer::admit(Pending &&p, Tick start)
{
    ++admitted_;
    const std::uint32_t sh = pickShard();
    shards_[sh].reserve(p.bw_mbps, p.fb_bytes);
    bw_reserved_ += p.bw_mbps;
    fb_reserved_ += p.fb_bytes;

    Live l;
    l.outcome = std::move(p.reh.outcome);
    const Tick finish_tick = start + p.reh.local_end;
    l.outcome.start_offset = start;
    l.outcome.end_tick = finish_tick;
    // The ladder clock starts at construction, so a live session
    // admitted at offset T dwells Healthy for T extra ticks before
    // its first transition; mirror SessionManager's rebasing.
    l.outcome
        .dwell[static_cast<std::size_t>(HealthState::kHealthy)] +=
        start;
    l.arrival = p.arrival;
    l.start = start;
    l.shard = sh;
    l.bw_mbps = p.bw_mbps;
    l.fb_bytes = p.fb_bytes;

    // Settle the session's block log against its shard's fault
    // domain on the serial timeline; the acquired lease holds the
    // cited entries resident until the session finishes.
    if (dedup_ && l.outcome.dedup.any()) {
        l.dedup_settle =
            dedup_->publish(sh, l.outcome.dedup, l.dedup_lease);
    }

    const std::uint64_t seq = next_seq_++;
    live_.emplace(seq, std::move(l));
    active_.push(Finish{finish_tick, seq});
    peak_active_ = std::max<std::uint64_t>(peak_active_,
                                           active_.size());
}

void
Placer::drainWaiting()
{
    // Strict FIFO, as in SessionManager::drainWaiting: no
    // head-of-line skipping, so admission order is independent of
    // session sizes (and of everything shard-shaped).
    while (!waiting_.empty()) {
        const Pending &front = waiting_.front();
        if (!fits(front.bw_mbps, front.fb_bytes)) {
            break;
        }
        Pending p = std::move(waiting_.front());
        waiting_.pop_front();
        admit(std::move(p), cur_tick_);
    }
    updateFleetHealth();
}

void
Placer::submitRehearsed(Pending &&p)
{
    if (fits(p.bw_mbps, p.fb_bytes)) {
        admit(std::move(p), cur_tick_);
        return;
    }
    if (cfg_.serve.queue_when_full &&
        couldEverFit(p.bw_mbps, p.fb_bytes)) {
        // The shedding ladder: past the configured queue depth the
        // fleet drops arrivals outright instead of letting the
        // queue (and its deadline backlog) grow without bound.
        if (cfg_.chaos.shed_depth > 0 &&
            waiting_.size() >= cfg_.chaos.shed_depth) {
            ++recovery_.shed;
            updateFleetHealth();
            return;
        }
        ++queued_;
        p.enqueue = cur_tick_;
        waiting_.push_back(std::move(p));
        peak_waiting_ = std::max<std::uint64_t>(peak_waiting_,
                                                waiting_.size());
        updateFleetHealth();
        return;
    }
    ++rejected_;
}

void
Placer::run(const std::vector<ArrivalEvent> &arrivals)
{
    vs_assert(!ran_, "a Placer runs one schedule");
    ran_ = true;
    if (checkpointing_) {
        // The implicit tick-0 checkpoint: every crash has a
        // restore point even before the first periodic one.
        takeAllCheckpoints();
    }
    std::size_t base = 0;
    while (base < arrivals.size()) {
        const std::size_t n =
            std::min<std::size_t>(cfg_.rehearse_block,
                                  arrivals.size() - base);
        // Build the block's configs serially (the factory may be
        // stateful when journaling is off), then rehearse the
        // admissible ones in parallel.
        std::vector<SessionConfig> cfgs;
        std::vector<double> bws(n, 0.0);
        std::vector<std::uint64_t> fbs(n, 0);
        std::vector<bool> whale(n, false);
        cfgs.reserve(n);
        std::vector<std::size_t> live;
        live.reserve(n);
        for (std::size_t j = 0; j < n; ++j) {
            const ArrivalEvent &a = arrivals[base + j];
            vs_assert(j + base == 0 ||
                          a.tick >= arrivals[base + j - 1].tick,
                      "arrival schedule must be non-decreasing");
            SessionConfig c = factory_(a);
            c.id = a.id;
            c.leave_after = a.leave_after;
            c.dedup_record = dedup_ != nullptr;
            bws[j] = Session::demandMBps(c.pipeline);
            fbs[j] = Session::framebufferBytes(c.pipeline);
            // Whales can never fit: reject without rehearsing (the
            // decision is budget-only, so skipping the rehearsal
            // cannot perturb the timeline).
            whale[j] = !couldEverFit(bws[j], fbs[j]);
            if (!whale[j]) {
                live.push_back(j);
            }
            cfgs.push_back(std::move(c));
        }
        std::vector<RehearsedSession> rehs = parallelMap(
            cfg_.jobs, live.size(), [&](std::size_t k) {
                return rehearseSession(cfgs[live[k]]);
            });
        // Feed the block through the timeline in arrival order.
        std::size_t next_live = 0;
        for (std::size_t j = 0; j < n; ++j) {
            advanceTo(arrivals[base + j].tick);
            if (whale[j]) {
                ++rejected_;
                continue;
            }
            Pending p;
            p.reh = std::move(rehs[next_live++]);
            p.arrival = arrivals[base + j];
            p.bw_mbps = bws[j];
            p.fb_bytes = fbs[j];
            submitRehearsed(std::move(p));
        }
        base += n;
    }
    // Drain: every finish frees budget, which admits more of the
    // queue; couldEverFit guarantees the queue empties (deadline
    // expiries along the way fire inside advanceTo).
    while (!active_.empty()) {
        advanceTo(active_.top().tick);
    }
    vs_assert(waiting_.empty(),
              "fleet drained with sessions still queued");
    vs_assert(live_.empty(),
              "fleet drained with sessions still in flight");
    if (dedup_) {
        // Surface the per-domain aggregates through the shard
        // snapshots so fleet reports can attribute poisoning (false
        // hits, breaker trips) to its blast radius.
        for (std::uint32_t d = 0; d < cfg_.shards; ++d) {
            shards_[d].foldDedupDomain(dedup_->domainStats(d),
                                       dedup_->entries(d),
                                       dedup_->liveRefs(d), d);
        }
    }
}

StatsSnapshot
Placer::fleetSnapshot() const
{
    StatsSnapshot fleet;
    for (const Shard &s : shards_) {
        fleet.merge(s.snapshot());
    }
    return fleet;
}

} // namespace vstream
