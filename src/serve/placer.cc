#include "serve/placer.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace vstream
{

void
FleetConfig::validate() const
{
    serve.validate();
    if (shards == 0) {
        vs_fatal("fleet needs at least one shard");
    }
    if (rehearse_block == 0) {
        vs_fatal("rehearse_block must be >= 1");
    }
}

Placer::Placer(FleetConfig cfg, SessionFactory factory)
    : cfg_(cfg), factory_(std::move(factory))
{
    cfg_.validate();
    vs_assert(factory_ != nullptr, "fleet needs a session factory");
    shards_.reserve(cfg_.shards);
    for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
        shards_.emplace_back(i);
    }
    // Equal slices to start; rebalance() re-weights them later.
    const double n = static_cast<double>(cfg_.shards);
    for (Shard &s : shards_) {
        s.setSlices(cfg_.serve.bandwidth_budget_mbps / n,
                    static_cast<double>(
                        cfg_.serve.framebuffer_budget_bytes) /
                        n);
    }
    next_rebalance_ = cfg_.rebalance_period;
}

bool
Placer::fits(double bw_mbps, std::uint64_t fb_bytes) const
{
    // Global admission, same predicate as SessionManager::fits -
    // no term here may depend on the shard layout.
    return active_.size() < cfg_.serve.max_active &&
           bw_reserved_ + bw_mbps <=
               cfg_.serve.bandwidth_budget_mbps &&
           fb_reserved_ + fb_bytes <=
               cfg_.serve.framebuffer_budget_bytes;
}

bool
Placer::couldEverFit(double bw_mbps, std::uint64_t fb_bytes) const
{
    return bw_mbps <= cfg_.serve.bandwidth_budget_mbps &&
           fb_bytes <= cfg_.serve.framebuffer_budget_bytes;
}

std::uint32_t
Placer::pickShard() const
{
    // Least loaded; strict-less compare, so the lowest shard id
    // wins ties (the deterministic tie-break the invariance tests
    // rely on).
    std::uint32_t best = 0;
    double best_load = shards_[0].load();
    for (std::uint32_t i = 1; i < shards_.size(); ++i) {
        const double l = shards_[i].load();
        if (l < best_load) {
            best = i;
            best_load = l;
        }
    }
    return best;
}

void
Placer::rebalance()
{
    ++rebalances_;
    // Re-weight slices toward observed reservations, with a floor
    // so an idle shard keeps attracting arrivals.  Purely advisory:
    // slices weight pickShard() and nothing else, so this cannot
    // change admission, timing, or any emitted stat.
    double total_bw = 0.0;
    double total_fb = 0.0;
    for (const Shard &s : shards_) {
        total_bw += s.bwReservedMBps();
        total_fb += static_cast<double>(s.fbReservedBytes());
    }
    const double n = static_cast<double>(shards_.size());
    const double floor_frac = 0.5 / n;
    for (Shard &s : shards_) {
        const double bw_share =
            total_bw > 0.0 ? s.bwReservedMBps() / total_bw : 1.0 / n;
        const double fb_share =
            total_fb > 0.0
                ? static_cast<double>(s.fbReservedBytes()) / total_fb
                : 1.0 / n;
        s.setSlices(cfg_.serve.bandwidth_budget_mbps *
                        (floor_frac + 0.5 * bw_share),
                    static_cast<double>(
                        cfg_.serve.framebuffer_budget_bytes) *
                        (floor_frac + 0.5 * fb_share));
    }
}

void
Placer::advanceTo(Tick t)
{
    vs_assert(t >= cur_tick_, "fleet timeline moved backwards");
    for (;;) {
        const bool have_finish =
            !active_.empty() && active_.top().tick <= t;
        const bool have_rebalance =
            cfg_.rebalance_period > 0 && next_rebalance_ <= t;
        if (!have_finish && !have_rebalance) {
            break;
        }
        // Earliest event first; finishes win ties so a rebalance at
        // tick R sees the budget already freed at R.
        if (have_finish &&
            (!have_rebalance ||
             active_.top().tick <= next_rebalance_)) {
            const Finish f = active_.top();
            active_.pop();
            cur_tick_ = std::max(cur_tick_, f.tick);
            shards_[f.shard].release(f.bw_mbps, f.fb_bytes);
            bw_reserved_ -= f.bw_mbps;
            vs_assert(fb_reserved_ >= f.fb_bytes,
                      "fleet frame-buffer reservation underflow");
            fb_reserved_ -= f.fb_bytes;
            drainWaiting();
        } else {
            cur_tick_ = std::max(cur_tick_, next_rebalance_);
            rebalance();
            next_rebalance_ += cfg_.rebalance_period;
        }
    }
    cur_tick_ = std::max(cur_tick_, t);
}

void
Placer::admit(Pending &&p, Tick start)
{
    ++admitted_;
    const std::uint32_t sh = pickShard();
    shards_[sh].reserve(p.bw_mbps, p.fb_bytes);
    bw_reserved_ += p.bw_mbps;
    fb_reserved_ += p.fb_bytes;

    SessionOutcome o = std::move(p.reh.outcome);
    const Tick finish_tick = start + p.reh.local_end;
    o.start_offset = start;
    o.end_tick = finish_tick;
    // The ladder clock starts at construction, so a live session
    // admitted at offset T dwells Healthy for T extra ticks before
    // its first transition; mirror SessionManager's rebasing.
    o.dwell[static_cast<std::size_t>(HealthState::kHealthy)] +=
        start;
    shards_[sh].absorb(o);
    // o dies here: the only per-session residue is this heap entry.
    active_.push(Finish{finish_tick, next_seq_++, sh, p.bw_mbps,
                        p.fb_bytes});
    peak_active_ = std::max<std::uint64_t>(peak_active_,
                                           active_.size());
}

void
Placer::drainWaiting()
{
    // Strict FIFO, as in SessionManager::drainWaiting: no
    // head-of-line skipping, so admission order is independent of
    // session sizes (and of everything shard-shaped).
    while (!waiting_.empty()) {
        const Pending &front = waiting_.front();
        if (!fits(front.bw_mbps, front.fb_bytes)) {
            break;
        }
        Pending p = std::move(waiting_.front());
        waiting_.pop_front();
        admit(std::move(p), cur_tick_);
    }
}

void
Placer::submitRehearsed(Pending &&p)
{
    if (fits(p.bw_mbps, p.fb_bytes)) {
        admit(std::move(p), cur_tick_);
        return;
    }
    if (cfg_.serve.queue_when_full &&
        couldEverFit(p.bw_mbps, p.fb_bytes)) {
        ++queued_;
        waiting_.push_back(std::move(p));
        peak_waiting_ = std::max<std::uint64_t>(peak_waiting_,
                                                waiting_.size());
        return;
    }
    ++rejected_;
}

void
Placer::run(const std::vector<ArrivalEvent> &arrivals)
{
    vs_assert(!ran_, "a Placer runs one schedule");
    ran_ = true;
    std::size_t base = 0;
    while (base < arrivals.size()) {
        const std::size_t n =
            std::min<std::size_t>(cfg_.rehearse_block,
                                  arrivals.size() - base);
        // Build the block's configs serially (the factory may be
        // stateful), then rehearse the admissible ones in parallel.
        std::vector<SessionConfig> cfgs;
        std::vector<double> bws(n, 0.0);
        std::vector<std::uint64_t> fbs(n, 0);
        std::vector<bool> whale(n, false);
        cfgs.reserve(n);
        std::vector<std::size_t> live;
        live.reserve(n);
        for (std::size_t j = 0; j < n; ++j) {
            const ArrivalEvent &a = arrivals[base + j];
            vs_assert(j + base == 0 ||
                          a.tick >= arrivals[base + j - 1].tick,
                      "arrival schedule must be non-decreasing");
            SessionConfig c = factory_(a);
            c.id = a.id;
            c.leave_after = a.leave_after;
            bws[j] = Session::demandMBps(c.pipeline);
            fbs[j] = Session::framebufferBytes(c.pipeline);
            // Whales can never fit: reject without rehearsing (the
            // decision is budget-only, so skipping the rehearsal
            // cannot perturb the timeline).
            whale[j] = !couldEverFit(bws[j], fbs[j]);
            if (!whale[j]) {
                live.push_back(j);
            }
            cfgs.push_back(std::move(c));
        }
        std::vector<RehearsedSession> rehs = parallelMap(
            cfg_.jobs, live.size(), [&](std::size_t k) {
                return rehearseSession(cfgs[live[k]]);
            });
        // Feed the block through the timeline in arrival order.
        std::size_t next_live = 0;
        for (std::size_t j = 0; j < n; ++j) {
            advanceTo(arrivals[base + j].tick);
            if (whale[j]) {
                ++rejected_;
                continue;
            }
            Pending p;
            p.reh = std::move(rehs[next_live++]);
            p.bw_mbps = bws[j];
            p.fb_bytes = fbs[j];
            submitRehearsed(std::move(p));
        }
        base += n;
    }
    // Drain: every finish frees budget, which admits more of the
    // queue; couldEverFit guarantees the queue empties.
    while (!active_.empty()) {
        advanceTo(active_.top().tick);
    }
    vs_assert(waiting_.empty(),
              "fleet drained with sessions still queued");
}

StatsSnapshot
Placer::fleetSnapshot() const
{
    StatsSnapshot fleet;
    for (const Shard &s : shards_) {
        fleet.merge(s.snapshot());
    }
    return fleet;
}

} // namespace vstream
