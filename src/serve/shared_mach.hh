/**
 * @file
 * Shared cross-session MACH dedup tier with poisoning containment.
 *
 * ROADMAP's top open item: at fleet scale thousands of sessions
 * decode the same popular titles, so a block one session already
 * materialized does not need a second 48 B DRAM write.  This tier
 * sits *above* the per-session MachArray/MachCache and is the first
 * state in the codebase that crosses a session boundary, which makes
 * its design as much about containment as caching:
 *
 *  - **Record, then settle serially.**  Sessions are rehearsed
 *    hermetically (possibly in parallel worker threads), so the tier
 *    is never consulted during decode.  Instead a DedupRecorder
 *    (attached via MachArray's write observer) logs the distinct
 *    blocks a session materialized, and the placer settles that log
 *    against the tier on its serial timeline at admission.  Jobs- and
 *    seed-invariance are preserved by construction.
 *
 *  - **Traffic, not pixels.**  A shared hit elides the DRAM write in
 *    the *accounting* (serve.dedup.sharedHits / bytesElided), never
 *    in the session's own pipeline: decode timing, pixel digests,
 *    drops and underruns are bit-identical with dedup on or off.
 *    This replaces the old "clean sessions are bit-identical to solo
 *    runs" invariant and is tested explicitly (tests/test_dedup.cc).
 *
 *  - **Blast radius = fault domain.**  The tier is partitioned per
 *    fault domain (fleet: the routed shard).  Every citation is
 *    verify-on-hit (full byte compare), and a per-domain circuit
 *    breaker turns a false-hit storm into an *epoch bump*: all of
 *    the domain's old-epoch entries become unciteable, refcounts
 *    drain as their sessions finish, and memory reclaims.  Poisoning
 *    one domain can therefore never leak into a neighbour
 *    (docs/ROBUSTNESS.md, "Shared MACH & poisoning containment").
 */

#ifndef VSTREAM_SERVE_SHARED_MACH_HH
#define VSTREAM_SERVE_SHARED_MACH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/flat_table.hh"

namespace vstream
{

/** One distinct block a session materialized: the original (unforged)
 * digest/aux as seen by MachArray::insertUnique, the ground-truth
 * bytes, and how many times the session wrote a block with this
 * identity. */
struct DedupBlock
{
    std::uint32_t digest = 0;
    std::uint16_t aux = 0;
    /** insertUnique calls with this (digest, aux) and these bytes. */
    std::uint32_t writes = 0;
    std::vector<std::uint8_t> truth;
};

/** The per-session materialization log, in first-write order. */
struct DedupRecord
{
    std::vector<DedupBlock> blocks;
    /** Writes whose (digest, aux) matched an earlier block with
     * *different* bytes - an organic collision; counted and excluded
     * from dedup rather than risking a wrong citation. */
    std::uint64_t skipped_collisions = 0;

    bool any() const
    {
        return !blocks.empty() || skipped_collisions != 0;
    }
    std::uint64_t totalWrites() const;
};

/**
 * Per-session observer of unique-block writes.  One recorder per
 * session, owned by the session, touched only from its (possibly
 * worker-thread) rehearsal - nothing here is shared.
 */
class DedupRecorder
{
  public:
    /** MachWriteObserver entry point. */
    void observe(std::uint32_t digest, std::uint16_t aux,
                 const std::vector<std::uint8_t> &truth);

    /** Move the log out (the recorder resets to empty). */
    DedupRecord take();

    const DedupRecord &record() const { return rec_; }

  private:
    /** (digest<<16)|aux -> index into rec_.blocks; per-session
     * private scratch. */
    // vstream:shard_local
    FlatMap<std::uint64_t, std::uint32_t> index_;
    /** The log being built; per-session private. */
    // vstream:shard_local
    DedupRecord rec_;
};

/** Deterministic digest-collision injection against one domain's
 * shared tier ("domain=1,rate=0.25,seed=9"): at publish time a
 * poisoned consult is forged to collide with a previously published
 * entry of different content, exercising verify-on-hit and the
 * breaker exactly like a real poisoning attempt would. */
struct DedupPoisonRule
{
    std::uint32_t domain = 0;
    /** P(consult is forged), in [0, 1]. */
    double rate = 0.0;
    std::uint64_t seed = 1;
};

/** Parse "domain=N,rate=F,seed=N" fail-closed (rate required). */
bool tryParseDedupPoisonRule(const std::string &spec,
                             DedupPoisonRule &out, std::string &error);

/** Parse-or-die wrapper for CLI use. */
DedupPoisonRule parseDedupPoisonRule(const std::string &spec);

/** Tier-wide configuration. */
struct DedupConfig
{
    bool enabled = false;
    /** Breaker window length, in consults. */
    std::uint64_t breaker_window = 4096;
    /** Verify-on-hit mismatches within one window that trip the
     * domain's breaker. */
    std::uint64_t breaker_false_hits = 4;
    /** Consults a tripped domain ignores before sharing resumes
     * (the new epoch is already in force). */
    std::uint64_t quarantine_consults = 1024;
    std::vector<DedupPoisonRule> poison;
};

/** Outcome of settling one session's record against the tier.  All
 * counters are write-granular except unique_published and
 * false_hits. */
struct DedupSettle
{
    /** Writes elided by citing a block *another* session published. */
    std::uint64_t shared_hits = 0;
    /** Writes elided against the session's own published block (the
     * per-session MACH history window missed them; the tier does
     * not). */
    std::uint64_t self_hits = 0;
    /** DRAM write bytes elided (48 B per elided write). */
    std::uint64_t bytes_elided = 0;
    /** Blocks this session inserted into the tier. */
    std::uint64_t unique_published = 0;
    /** Consults demoted by the verify-on-hit byte compare. */
    std::uint64_t false_hits = 0;
    /** Writes that could not be considered for sharing (domain
     * quarantined, or the slot still draining an old epoch). */
    std::uint64_t blocked_writes = 0;

    bool any() const;
    DedupSettle &operator+=(const DedupSettle &o);
};

/** One citation a session holds: which key, and the epoch of the
 * entry when the ref was taken (a trip mid-publish means one lease
 * can span epochs). */
struct DedupLeaseKey
{
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;
};

/** Every refcount a session holds against its domain; released when
 * the session finishes (or voided wholesale by a domain wipe). */
struct DedupLease
{
    std::uint32_t domain = 0;
    std::vector<DedupLeaseKey> keys;

    bool empty() const { return keys.empty(); }
};

/** Cumulative per-domain aggregates; survive wipes and trips so a
 * fleet report can attribute poisoning to its blast radius. */
struct DedupDomainStats
{
    /** Current epoch; bumps on breaker trip and on domain wipe. */
    std::uint64_t epoch = 0;
    /** Breaker trips (epoch bumps caused by false-hit storms). */
    std::uint64_t trips = 0;
    std::uint64_t consults = 0;
    std::uint64_t false_hits = 0;
    std::uint64_t shared_hits = 0;
    std::uint64_t self_hits = 0;
    std::uint64_t bytes_elided = 0;
    std::uint64_t unique_published = 0;
    std::uint64_t blocked_writes = 0;

    DedupDomainStats &operator+=(const DedupDomainStats &o);
};

/**
 * The refcounted, per-fault-domain shared MACH tier.
 *
 * Single-threaded by design: every method runs on the placer's (or
 * session manager's) serial timeline.  The shard-local annotations
 * below are load-bearing - the analyzer's shared-state-guarded rule
 * requires them, and the lock-discipline pass flags any use from a
 * parallelFor/parallelMap worker.
 */
class SharedMachTier
{
  public:
    SharedMachTier(const DedupConfig &cfg, std::uint32_t domains);

    std::uint32_t domains() const
    {
        return static_cast<std::uint32_t>(domains_.size());
    }

    /**
     * Settle @p rec against @p domain: verify-on-hit citations elide
     * write accounting, fresh blocks publish with refcount 1, and
     * every acquired ref is appended to @p lease for release at
     * session finish.  Deterministic given the call sequence.
     */
    DedupSettle publish(std::uint32_t domain, const DedupRecord &rec,
                        DedupLease &lease);

    /** Drop the refs of @p lease.  Old-epoch entries whose last ref
     * drains are erased (the quarantine reclaim path); releases
     * against wiped entries no-op. */
    void release(const DedupLease &lease);

    /**
     * Crash-recovery rebuild: re-insert @p rec's blocks into
     * @p domain at the current epoch with zero refs and *no* stats -
     * replaying the journal must reconstruct tier content
     * deterministically without double-counting elisions.
     */
    void republish(std::uint32_t domain, const DedupRecord &rec);

    /** Shard crash: every entry of @p domain is dropped (all
     * outstanding leases become void), the epoch bumps, and any
     * quarantine cooldown is cleared.  Cumulative stats survive. */
    void wipeDomain(std::uint32_t domain);

    const DedupDomainStats &domainStats(std::uint32_t domain) const;
    DedupDomainStats totals() const;

    /** Entries currently resident in @p domain (any epoch). */
    std::uint64_t entries(std::uint32_t domain) const;
    /** Outstanding refcounts across @p domain's entries. */
    std::uint64_t liveRefs(std::uint32_t domain) const;
    /** Entries still draining from pre-trip/pre-wipe epochs. */
    std::uint64_t staleEntries(std::uint32_t domain) const;
    /** True while the domain ignores consults after a trip. */
    bool quarantined(std::uint32_t domain) const;

    /** Zero every cumulative counter (epochs and tier content are
     * structural and survive). */
    void resetStats();

    const DedupConfig &config() const { return cfg_; }

  private:
    struct Entry
    {
        std::vector<std::uint8_t> truth;
        std::uint64_t epoch = 0;
        std::uint32_t refs = 0;
    };

    struct Domain
    {
        /** Resident blocks; std::map for deterministic iteration
         * order on the serial settle path. */
        // vstream:shard_local
        std::map<std::uint64_t, Entry> resident;
        /** Cumulative aggregates (survive wipes). */
        // vstream:shard_local
        DedupDomainStats stats;
        /** Consults into the current breaker window. */
        // vstream:shard_local
        std::uint64_t window_consults = 0;
        /** False hits within the current window. */
        // vstream:shard_local
        std::uint64_t window_false = 0;
        /** Remaining quarantine cooldown, in consults. */
        // vstream:shard_local
        std::uint64_t cooldown_left = 0;
        /** Most recently inserted key: the forgery victim for
         * injected collisions. */
        // vstream:shard_local
        std::uint64_t last_insert = 0;
        // vstream:shard_local
        bool have_last_insert = false;
        /** Injection rule for this domain (rate 0 = none). */
        // vstream:shard_local
        DedupPoisonRule poison;
    };

    void tripBreaker(Domain &d);
    Domain &domainAt(std::uint32_t domain);
    const Domain &domainAt(std::uint32_t domain) const;

    /** Immutable after construction. */
    // vstream:shard_local
    DedupConfig cfg_;
    /** All tier state; only ever touched from the serial settle
     * phase, never from rehearsal workers. */
    // vstream:shard_local
    std::vector<Domain> domains_;
};

/** The combined tier key for a block identity. */
inline std::uint64_t
dedupKey(std::uint32_t digest, std::uint16_t aux)
{
    return (static_cast<std::uint64_t>(digest) << 16) |
           static_cast<std::uint64_t>(aux);
}

} // namespace vstream

#endif // VSTREAM_SERVE_SHARED_MACH_HH
