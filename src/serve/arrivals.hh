/**
 * @file
 * Fleet arrival process: who shows up when, and for how long.
 *
 * The PR-4 soak submits a fixed batch at tick 0; a fleet does not
 * work like that.  An ArrivalSchedule is an ordered list of
 * ArrivalEvents - session joins on the shared serving timeline, each
 * optionally carrying a mid-stream leave point - produced either by
 * a seeded Poisson process (the synthetic soak) or by parsing a
 * plain-text arrival trace (replaying measured traffic).  The
 * schedule is pure data: generating it involves no wall clock and no
 * global state, so the same config yields byte-identical schedules
 * on every run, which is the first link in the fleet determinism
 * chain (docs/SERVING.md, "Arrival process").
 */

#ifndef VSTREAM_SERVE_ARRIVALS_HH
#define VSTREAM_SERVE_ARRIVALS_HH

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace vstream
{

/** One session join on the fleet timeline. */
struct ArrivalEvent
{
    /** Arrival tick on the shared serving timeline. */
    Tick tick = 0;
    /** Session id (unique; sequential for generated schedules). */
    std::uint64_t id = 0;
    /** Viewer departure after this many *local* ticks of playback
     * (0 = watch to the end); see SessionConfig::leave_after. */
    Tick leave_after = 0;
    /** Workload-mix selector, interpreted by the session factory. */
    std::uint32_t mix = 0;
};

/** Seeded Poisson arrival generator parameters. */
struct PoissonArrivalConfig
{
    std::uint64_t seed = 0x5eedULL;
    /** Mean arrival rate, sessions per simulated second. */
    double rate_per_s = 100.0;
    /** Total sessions to generate. */
    std::uint64_t count = 1000;
    /** First session id (ids are sequential from here). */
    std::uint64_t first_id = 0;
    /** Probability a viewer leaves mid-stream. */
    double leave_probability = 0.0;
    /** Leave point drawn uniformly from [min_watch, max_watch]. */
    Tick min_watch = 0;
    Tick max_watch = 0;
    /** mix cycles 0..num_mixes-1 by id (0 disables the field). */
    std::uint32_t num_mixes = 0;

    void validate() const;
};

/**
 * Generate a Poisson arrival schedule: exponential inter-arrival
 * gaps at @p cfg.rate_per_s, rounded to whole ticks, with optional
 * mid-stream leaves.  Deterministic in the seed; events are in
 * non-decreasing tick order with sequential ids.
 */
std::vector<ArrivalEvent>
poissonArrivals(const PoissonArrivalConfig &cfg);

/** Outcome of parsing an arrival trace (ok() == parsed cleanly). */
struct ArrivalTraceResult
{
    std::vector<ArrivalEvent> events;
    /** Empty on success; a one-line diagnostic otherwise. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/**
 * Parse a plain-text arrival trace.
 *
 * One event per line: `<arrival_us> <watch_us> <mix>` - arrival time
 * in microseconds on the fleet timeline (non-decreasing), watched
 * duration in microseconds (0 = watch to the end), and the mix
 * selector.  Blank lines and `#` comments are skipped.  Ids are
 * assigned sequentially from @p first_id.  The parser is
 * fail-closed: any malformed or out-of-order line aborts the parse
 * with a diagnostic naming the line (untrusted-input discipline,
 * docs/ANALYSIS.md).
 */
ArrivalTraceResult
parseArrivalTrace(std::istream &is, std::uint64_t first_id = 0);

} // namespace vstream

#endif // VSTREAM_SERVE_ARRIVALS_HH
