/**
 * @file
 * Pixel-level frame reconstruction at the display side.
 *
 * Turns the stored representation of a mab (raw block, or gradient
 * block plus base) back into display pixels, and verifies whole
 * frames against the checksum taken at decode time - the simulator's
 * proof that the MACH path is lossless (absent undetected hash
 * collisions, which this check is designed to expose).
 */

#ifndef VSTREAM_DISPLAY_FRAME_RECONSTRUCTOR_HH
#define VSTREAM_DISPLAY_FRAME_RECONSTRUCTOR_HH

#include <cstdint>
#include <vector>

#include "core/frame_buffer_manager.hh"
#include "core/framebuffer_layout.hh"
#include "video/macroblock.hh"

namespace vstream
{

/** Stateless reconstruction helpers. */
class FrameReconstructor
{
  public:
    /**
     * Rebuild the displayed mab from its stored block bytes.
     *
     * In gradient mode the stored bytes are the gab and the record's
     * base is added back per pixel (the vector-add the DC performs).
     */
    static Macroblock rebuildMab(const std::vector<std::uint8_t> &stored,
                                 const MabRecord &rec,
                                 bool gradient_mode);

    /** Same, from an arena byte view. */
    static Macroblock rebuildMab(const StoredBlock &stored,
                                 const MabRecord &rec,
                                 bool gradient_mode);

    /**
     * Zero-alloc variant: rebuild into @p out, reusing its storage —
     * the per-mab workhorse of DisplayController::scanOut.
     */
    static void rebuildMabInto(const StoredBlock &stored,
                               const MabRecord &rec, bool gradient_mode,
                               Macroblock &out);

    /**
     * Checksum a sequence of reconstructed mabs (same CRC the decoder
     * used on the source frame).
     */
    static std::uint32_t
    checksum(const std::vector<Macroblock> &mabs);
};

} // namespace vstream

#endif // VSTREAM_DISPLAY_FRAME_RECONSTRUCTOR_HH
