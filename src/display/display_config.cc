#include "display/display_config.hh"

#include "sim/logging.hh"

namespace vstream
{

void
DisplayConfig::validate() const
{
    if (refresh_hz == 0) {
        vs_fatal("refresh rate must be non-zero");
    }
    display_cache.validate();
    if (use_mach_buffer &&
        (mach_buffer_entries == 0 || mach_buffer_ways == 0 ||
         mach_buffer_entries % mach_buffer_ways != 0)) {
        vs_fatal("bad MACH buffer geometry");
    }
}

} // namespace vstream
