/**
 * @file
 * Display controller (DC) IP model.
 *
 * Every vsync the DC scans out one frame from memory.  With the
 * baseline linear layout it streams the frame buffer sequentially;
 * with MACH layouts it walks the per-mab metadata, chases pointers
 * through the display cache, serves digest records from the MACH
 * buffer, re-adds gab bases, and reconstructs a pixel-exact frame.
 * All DRAM traffic, fragmentation, and cache statistics the paper
 * reports in Sec. 5/Fig. 10 are collected here.
 */

#ifndef VSTREAM_DISPLAY_DISPLAY_CONTROLLER_HH
#define VSTREAM_DISPLAY_DISPLAY_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "core/flat_table.hh"
#include "core/frame_buffer_manager.hh"
#include "core/framebuffer_layout.hh"
#include "display/display_cache.hh"
#include "display/display_config.hh"
#include "display/mach_buffer.hh"
#include "mem/memory_system.hh"
#include "sim/sim_object.hh"
#include "video/macroblock.hh"

namespace vstream
{

/** Statistics of one frame scan-out. */
struct ScanStats
{
    Tick start = 0;
    Tick finish = 0;
    std::uint64_t dram_requests = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t meta_bytes = 0;
    std::uint64_t display_cache_hits = 0;
    std::uint64_t display_cache_misses = 0;
    std::uint64_t mach_buffer_hits = 0;
    std::uint64_t mach_buffer_misses = 0;
    std::uint64_t digest_records = 0;
    std::uint64_t pointer_records = 0;
    std::uint64_t fragmented_fetches = 0;
    /** Frame checksum matched the decode-time checksum. */
    bool verified = false;
    /** Scan skipped entirely (transaction elimination). */
    bool eliminated = false;
};

/** Cumulative DC statistics. */
struct DisplayTotals
{
    std::uint64_t frames_shown = 0;
    std::uint64_t re_renders = 0;
    std::uint64_t dram_requests = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t meta_bytes = 0;
    std::uint64_t digest_records = 0;
    std::uint64_t pointer_records = 0;
    std::uint64_t fragmented_fetches = 0;
    std::uint64_t verify_failures = 0;
    /** Scans skipped by transaction elimination. */
    std::uint64_t eliminated_frames = 0;
    /** Re-scans of the previous frame forced by a streaming-buffer
     * underrun (the successor had not arrived by its vsync). */
    std::uint64_t underrun_repeats = 0;
    /** Order-sensitive hash over every scanned-out frame's pixel
     * checksum: the "pixels" side of the dedup tier's traffic-not-
     * pixels invariant (tests compare it across dedup on/off runs).
     * Deliberately not a registered stat - it is a proof artifact,
     * not a metric. */
    std::uint64_t pixel_digest = 0;
};

/** The DC IP. */
class DisplayController : public SimObject
{
  public:
    DisplayController(std::string name, EventQueue *queue,
                      MemorySystem &mem, FrameBufferManager &fbm,
                      const DisplayConfig &cfg);

    /**
     * Scan out @p layout starting at @p now (a vsync tick).
     *
     * @param re_render true when the frame is being shown again
     *        because its successor missed the deadline.
     */
    ScanStats scanOut(const FrameLayout &layout, Tick now,
                      bool re_render = false);

    /** Record that the frame just scanned out was a repeat forced by
     * a streaming-buffer underrun (graceful degradation, not a
     * panic). */
    void noteUnderrunRepeat() { ++totals_.underrun_repeats; }

    const DisplayConfig &config() const { return cfg_; }
    const DisplayTotals &totals() const { return totals_; }
    DisplayCache *displayCache() { return display_cache_.get(); }
    MachBuffer *machBuffer() { return mach_buffer_.get(); }

    /** Frame period in ticks. */
    Tick framePeriod() const { return sim_clock::s / cfg_.refresh_hz; }

    void regStats(StatsRegistry &r) override;
    void resetStats() override;

  private:
    /** Stream @p bytes sequentially from @p base; returns end tick. */
    Tick streamRead(Addr base, std::uint64_t bytes, Tick now,
                    ScanStats &stats);

    /** Fetch one block through the display cache. */
    Tick fetchBlock(Addr addr, std::uint32_t size, Tick now,
                    ScanStats &stats);

    /** Resolve a digest record on a MACH-buffer miss. */
    StoredBlock resolveDigestMiss(const FrameLayout &layout,
                                  std::uint32_t digest, Tick &now,
                                  ScanStats &stats);

    using MachDumpVec = std::vector<std::pair<std::uint32_t, Addr>>;

    /** Copy @p dump into the dump ring as the newest entry. */
    /** Retire @p dump into the recycled ring; @p cap_hint (the
     * frame's mab count) bounds any dump size, so ring slots are
     * reserved once and recycled allocation-free. */
    void pushDump(const MachDumpVec &dump, std::size_t cap_hint);
    /** Dump @p i of the ring, 0 = newest. */
    const MachDumpVec &dumpAt(std::size_t i) const;

    MemorySystem &mem_;
    FrameBufferManager &fbm_;
    DisplayConfig cfg_;
    std::unique_ptr<DisplayCache> display_cache_;
    std::unique_ptr<MachBuffer> mach_buffer_;

    /**
     * MACH dumps of recent frames (digest -> ptr).  A recycled ring
     * of cfg_.mach_window slots refreshed by copy-assignment (which
     * reuses each slot's capacity), so the steady-state scan-out
     * keeps no per-frame dump allocation.
     */
    std::vector<MachDumpVec> dump_ring_;
    std::size_t dump_next_ = 0;
    std::size_t dump_count_ = 0;

    // Scratch reused across scan-outs (zero-alloc steady state).
    std::vector<Macroblock> shown_scratch_;
    FlatSet<std::uint32_t> dump_digest_scratch_;
    CacheAccessSummary access_scratch_;

    /** Checksum of the frame currently on the panel (transaction
     * elimination); ~0 when nothing has been shown yet. */
    std::uint64_t on_screen_checksum_ = ~0ULL;

    DisplayTotals totals_;
};

} // namespace vstream

#endif // VSTREAM_DISPLAY_DISPLAY_CONTROLLER_HH
