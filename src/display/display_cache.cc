#include "display/display_cache.hh"

namespace vstream
{

DisplayCache::DisplayCache(const CacheConfig &cfg)
    : cache_(std::make_unique<SetAssocCache>("dc.displayCache", cfg))
{
}

std::vector<Addr>
DisplayCache::access(Addr addr, std::uint32_t size)
{
    const CacheAccessSummary s = cache_->access(addr, size, MemOp::kRead);
    return s.fills;
}

// vstream:hot
const std::vector<Addr> &
DisplayCache::accessInto(Addr addr, std::uint32_t size,
                         CacheAccessSummary &scratch)
{
    cache_->accessInto(addr, size, MemOp::kRead, scratch);
    return scratch.fills;
}

std::uint32_t
DisplayCache::lineSpan(Addr addr, std::uint32_t size) const
{
    const std::uint32_t line = cache_->config().line_bytes;
    const Addr first = addr / line;
    const Addr last = (addr + size - 1) / line;
    return static_cast<std::uint32_t>(last - first + 1);
}

} // namespace vstream
