#include "display/display_controller.hh"

#include <utility>

#include "core/flat_table.hh"
#include "display/frame_reconstructor.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

DisplayController::DisplayController(std::string name, EventQueue *queue,
                                     MemorySystem &mem,
                                     FrameBufferManager &fbm,
                                     const DisplayConfig &cfg)
    : SimObject(std::move(name), queue), mem_(mem), fbm_(fbm), cfg_(cfg)
{
    cfg_.validate();
    if (cfg_.use_display_cache) {
        display_cache_ = std::make_unique<DisplayCache>(cfg_.display_cache);
    }
    if (cfg_.use_mach_buffer) {
        mach_buffer_ = std::make_unique<MachBuffer>(
            cfg_.mach_buffer_entries, cfg_.mach_buffer_ways);
    }
}

Tick
DisplayController::streamRead(Addr base, std::uint64_t bytes, Tick now,
                              ScanStats &stats)
{
    // Sequential stream: one 64 B request per line, issued
    // back-to-back (the DC prefetches through a deep FIFO).
    constexpr std::uint32_t kLine = 64;
    Tick t = now;
    for (std::uint64_t off = 0; off < bytes; off += kLine) {
        const auto size = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(kLine, bytes - off));
        const MemResult r = mem_.read(base + off, size,
                                      Requester::kDisplayController, t);
        t = r.finish_tick;
        ++stats.dram_requests;
        stats.bytes_read += size;
    }
    return t;
}

Tick
DisplayController::fetchBlock(Addr addr, std::uint32_t size, Tick now,
                              ScanStats &stats)
{
    Tick t = now;
    const std::uint32_t span =
        display_cache_ ? display_cache_->lineSpan(addr, size)
                       : (static_cast<std::uint32_t>(
                             (addr + size - 1) / 64 - addr / 64 + 1));
    if (span > 1) {
        ++stats.fragmented_fetches;
    }

    if (display_cache_) {
        const std::vector<Addr> &fills =
            display_cache_->accessInto(addr, size, access_scratch_);
        stats.display_cache_hits += span - fills.size();
        stats.display_cache_misses += fills.size();
        for (Addr line : fills) {
            const MemResult r = mem_.read(
                line, display_cache_->config().line_bytes,
                Requester::kDisplayController, t);
            t = r.finish_tick;
            ++stats.dram_requests;
            stats.bytes_read += display_cache_->config().line_bytes;
        }
    } else {
        // No display cache: every line of the block hits DRAM.
        const Addr first = addr / 64 * 64;
        for (std::uint32_t i = 0; i < span; ++i) {
            const MemResult r = mem_.read(first + i * 64ULL, 64,
                                          Requester::kDisplayController,
                                          t);
            t = r.finish_tick;
            ++stats.dram_requests;
            stats.bytes_read += 64;
        }
    }
    return t;
}

StoredBlock
DisplayController::resolveDigestMiss(const FrameLayout &layout,
                                     std::uint32_t digest, Tick &now,
                                     ScanStats &stats)
{
    // The digest is not resident in the MACH buffer: consult the
    // dumped MACH images (one extra metadata read), then fetch the
    // block through the display-cache path.
    const MemResult meta = mem_.read(layout.machDumpBase(), 64,
                                     Requester::kDisplayController, now);
    now = meta.finish_tick;
    ++stats.dram_requests;
    stats.bytes_read += 64;

    for (std::size_t k = 0; k < dump_count_; ++k) {
        for (const auto &[d, ptr] : dumpAt(k)) {
            if (d == digest) {
                now = fetchBlock(ptr, layout.mabBytes(), now, stats);
                return fbm_.loadBlock(ptr);
            }
        }
    }
    return {};
}

// vstream:hot
// vstream:allow(no-hotpath-alloc) warmup-only: ring slots reserved
// to the per-frame mab bound once, then recycled allocation-free
void
DisplayController::pushDump(const MachDumpVec &dump,
                            std::size_t cap_hint)
{
    const std::size_t cap = cfg_.mach_window;
    if (cap == 0) {
        return;
    }
    if (dump_ring_.size() < cap && dump_next_ == dump_ring_.size()) {
        dump_ring_.push_back(dump);
        // A dump lists at most one entry per mab of the frame, so
        // reserving the mab count makes every later recycle of this
        // slot allocation-free no matter how dump sizes vary.
        dump_ring_.back().reserve(cap_hint);
        dump_next_ = dump_ring_.size() % cap;
    } else {
        MachDumpVec &slot = dump_ring_[dump_next_];
        slot.reserve(cap_hint);
        slot.assign(dump.begin(), dump.end());
        dump_next_ = (dump_next_ + 1) % cap;
    }
    dump_count_ = std::min(dump_count_ + 1, cap);
}

const DisplayController::MachDumpVec &
DisplayController::dumpAt(std::size_t i) const
{
    vs_assert(i < dump_count_, "dump ring index out of range");
    const std::size_t cap = cfg_.mach_window;
    return dump_ring_[(dump_next_ + cap - 1 - i) % cap];
}

ScanStats
DisplayController::scanOut(const FrameLayout &layout, Tick now,
                           bool re_render)
{
    ScanStats stats;
    stats.start = now;
    Tick t = now;

    // Transaction elimination: the frame on the panel already shows
    // exactly this content - skip the whole scan.
    if (cfg_.transaction_elimination &&
        on_screen_checksum_ == layout.sourceChecksum()) {
        stats.finish = now;
        stats.verified = true;
        stats.eliminated = true;
        ++totals_.frames_shown;
        ++totals_.eliminated_frames;
        // The panel keeps showing exactly this content; fold its
        // checksum so the digest covers eliminated frames too.
        totals_.pixel_digest = mixHash(
            totals_.pixel_digest ^ layout.sourceChecksum());
        if (re_render) {
            ++totals_.re_renders;
        }
        return stats;
    }

    // vstream:allow(no-hotpath-alloc) first-frame sizing only; later
    // scan-outs reuse the reconstructed-mab scratch storage
    std::vector<Macroblock> &shown = shown_scratch_;
    shown.resize(layout.mabCount());

    if (layout.kind() == LayoutKind::kLinear) {
        // Baseline: stream the whole decoded frame.
        const std::uint64_t frame_bytes =
            static_cast<std::uint64_t>(layout.mabCount()) *
            layout.mabBytes();
        t = streamRead(layout.dataBase(), frame_bytes, t, stats);
        for (std::uint32_t i = 0; i < layout.mabCount(); ++i) {
            const StoredBlock stored =
                fbm_.loadBlock(layout.record(i).data_addr);
            vs_assert(stored, "linear block missing");
            FrameReconstructor::rebuildMabInto(stored, layout.record(i),
                                               false, shown[i]);
        }
    } else {
        // Metadata stream: pointers/digests (+ bases + bitmap).
        t = streamRead(layout.metaBase(), layout.metaBytes(), t, stats);
        stats.meta_bytes = layout.metaBytes();

        // Pick up this frame's MACH dump for future digest lookups.
        if (layout.kind() == LayoutKind::kPointerDigest &&
            layout.machDumpBytes() > 0 && !re_render) {
            t = streamRead(layout.machDumpBase(), layout.machDumpBytes(),
                           t, stats);
            stats.meta_bytes += layout.machDumpBytes();
            pushDump(layout.machDump(), layout.mabCount());
        }

        // Digests present in this frame's dump: unique blocks worth
        // inserting into the MACH buffer as they stream past.
        FlatSet<std::uint32_t> &dump_digests = dump_digest_scratch_;
        dump_digests.clear();
        for (const auto &[d, ptr] : layout.machDump()) {
            dump_digests.insert(d);
        }

        for (std::uint32_t i = 0; i < layout.mabCount(); ++i) {
            const MabRecord &rec = layout.record(i);
            StoredBlock stored;

            if (rec.storage == MabStorage::kInterDigest && mach_buffer_) {
                ++stats.digest_records;
                if (const auto *hit = mach_buffer_->lookup(rec.digest)) {
                    stored = {hit->data(),
                              static_cast<std::uint32_t>(hit->size())};
                    ++stats.mach_buffer_hits;
                } else {
                    ++stats.mach_buffer_misses;
                    stored =
                        resolveDigestMiss(layout, rec.digest, t, stats);
                    if (!stored) {
                        // Dump aged out too: fall back to the block
                        // pointer the record still carries.
                        t = fetchBlock(rec.data_addr,
                                       layout.mabBytes(), t, stats);
                        stored = fbm_.loadBlock(rec.data_addr);
                    }
                }
            } else {
                ++stats.pointer_records;
                t = fetchBlock(rec.data_addr, layout.mabBytes(), t,
                               stats);
                stored = fbm_.loadBlock(rec.data_addr);
                if (stored && mach_buffer_ &&
                    rec.storage == MabStorage::kUnique &&
                    dump_digests.contains(rec.digest)) {
                    mach_buffer_->insert(rec.digest, stored.data,
                                         stored.size);
                }
            }

            vs_assert(stored,
                      "display could not locate block for mab ", i,
                      " of frame ", layout.frameIndex());
            FrameReconstructor::rebuildMabInto(
                stored, rec, layout.gradientMode(), shown[i]);
        }
    }

    stats.finish = t;
    const std::uint32_t shown_sum = FrameReconstructor::checksum(shown);
    stats.verified = shown_sum == layout.sourceChecksum();
    on_screen_checksum_ = layout.sourceChecksum();
    totals_.pixel_digest =
        mixHash(totals_.pixel_digest ^ shown_sum);

    ++totals_.frames_shown;
    if (re_render) {
        ++totals_.re_renders;
    }
    totals_.dram_requests += stats.dram_requests;
    totals_.bytes_read += stats.bytes_read;
    totals_.meta_bytes += stats.meta_bytes;
    totals_.digest_records += stats.digest_records;
    totals_.pointer_records += stats.pointer_records;
    totals_.fragmented_fetches += stats.fragmented_fetches;
    if (!stats.verified) {
        ++totals_.verify_failures;
    }
    return stats;
}

void
DisplayController::regStats(StatsRegistry &r)
{
    r.addCallback(name() + ".framesShown", "frames scanned out",
                  [this] {
                      return static_cast<double>(totals_.frames_shown);
                  });
    r.addCallback(name() + ".reRenders",
                  "stale frames shown again after a drop", [this] {
                      return static_cast<double>(totals_.re_renders);
                  });
    r.addCallback(name() + ".dramRequests", "DRAM requests issued",
                  [this] {
                      return static_cast<double>(totals_.dram_requests);
                  });
    r.addCallback(name() + ".bytesRead", "frame-buffer bytes fetched",
                  [this] {
                      return static_cast<double>(totals_.bytes_read);
                  });
    r.addCallback(name() + ".metaBytes", "layout metadata bytes fetched",
                  [this] {
                      return static_cast<double>(totals_.meta_bytes);
                  });
    r.addCallback(name() + ".eliminatedFrames",
                  "scans skipped by transaction elimination", [this] {
                      return static_cast<double>(
                          totals_.eliminated_frames);
                  });
    r.addCallback(name() + ".verifyFailures",
                  "frames whose checksum mismatched", [this] {
                      return static_cast<double>(
                          totals_.verify_failures);
                  });
    r.addCallback(name() + ".underrunRepeats",
                  "frame repeats forced by a buffer underrun", [this] {
                      return static_cast<double>(
                          totals_.underrun_repeats);
                  });
    if (display_cache_) {
        display_cache_->regStats(r);
    }
    if (mach_buffer_) {
        mach_buffer_->regStats(r, name() + ".machBuffer");
    }
}

void
DisplayController::resetStats()
{
    totals_ = DisplayTotals{};
    if (display_cache_) {
        display_cache_->resetStats();
    }
    if (mach_buffer_) {
        mach_buffer_->resetStats();
    }
}

} // namespace vstream
