#include "display/frame_reconstructor.hh"

#include "hash/crc.hh"
#include "sim/logging.hh"

namespace vstream
{

Macroblock
FrameReconstructor::rebuildMab(const std::vector<std::uint8_t> &stored,
                               const MabRecord &rec, bool gradient_mode)
{
    return rebuildMab(
        StoredBlock{stored.data(),
                    static_cast<std::uint32_t>(stored.size())},
        rec, gradient_mode);
}

Macroblock
FrameReconstructor::rebuildMab(const StoredBlock &stored,
                               const MabRecord &rec, bool gradient_mode)
{
    Macroblock out(1);
    rebuildMabInto(stored, rec, gradient_mode, out);
    return out;
}

// vstream:hot
void
FrameReconstructor::rebuildMabInto(const StoredBlock &stored,
                                   const MabRecord &rec,
                                   bool gradient_mode, Macroblock &out)
{
    // Infer the block dimension from the stored byte count.
    std::uint32_t dim = 1;
    while (static_cast<std::size_t>(dim) * dim * kBytesPerPixel <
           stored.size) {
        ++dim;
    }
    vs_assert(static_cast<std::size_t>(dim) * dim * kBytesPerPixel ==
                  stored.size,
              "stored block is not a square pixel block");

    out.assignBytes(dim, stored.data, stored.size);
    if (gradient_mode) {
        out.addBase(rec.base);
    }
}

std::uint32_t
FrameReconstructor::checksum(const std::vector<Macroblock> &mabs)
{
    Crc32 crc;
    for (const auto &m : mabs) {
        crc.update(m.bytes().data(), m.bytes().size());
    }
    return crc.digest();
}

} // namespace vstream
