/**
 * @file
 * The display cache (Sec. 5.1): a small direct-mapped cache in the
 * display controller, indexed by any pointer, caching the 64 B memory
 * lines the DC fetched recently.  Recovers the locality the pointer
 * indirection destroys: repeated intra-matches and the second halves
 * of fragmented (line-straddling) block fetches hit here instead of
 * going to DRAM.
 */

#ifndef VSTREAM_DISPLAY_DISPLAY_CACHE_HH
#define VSTREAM_DISPLAY_DISPLAY_CACHE_HH

#include <memory>
#include <ostream>

#include "cache/set_assoc_cache.hh"

namespace vstream
{

/** Address-indexed line cache at the DC. */
class DisplayCache
{
  public:
    explicit DisplayCache(const CacheConfig &cfg);

    /**
     * Access the lines covering [addr, addr+size).
     *
     * @return line addresses that missed and must be read from DRAM.
     */
    std::vector<Addr> access(Addr addr, std::uint32_t size);

    /**
     * Zero-alloc variant of access(): the missing line addresses land
     * in @p scratch.fills (cleared and reused).
     *
     * @return scratch.fills, for convenience.
     */
    const std::vector<Addr> &accessInto(Addr addr, std::uint32_t size,
                                        CacheAccessSummary &scratch);

    /** Number of lines [addr, addr+size) spans. */
    std::uint32_t lineSpan(Addr addr, std::uint32_t size) const;

    std::uint64_t hitCount() const { return cache_->hitCount(); }
    std::uint64_t missCount() const { return cache_->missCount(); }
    double missRate() const { return cache_->missRate(); }

    void invalidateAll() { cache_->invalidateAll(); }
    void resetStats() { cache_->resetStats(); }
    void regStats(StatsRegistry &r) const { cache_->regStats(r); }

    const CacheConfig &config() const { return cache_->config(); }

  private:
    std::unique_ptr<SetAssocCache> cache_;
};

} // namespace vstream

#endif // VSTREAM_DISPLAY_DISPLAY_CACHE_HH
