/**
 * @file
 * The MACH buffer (Sec. 5.1): a digest-indexed block store at the
 * display controller.
 *
 * Holds whole mabs/gabs keyed by their content digest; populated as
 * the DC scans each frame's unique blocks that appear in that frame's
 * dumped MACH image.  Inter-matches stored as digests in the
 * pointer+digest layout are served from here without touching DRAM.
 */

#ifndef VSTREAM_DISPLAY_MACH_BUFFER_HH
#define VSTREAM_DISPLAY_MACH_BUFFER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "cache/replacement.hh"

namespace vstream
{

class StatsRegistry;

/** Digest-indexed, set-associative block buffer. */
class MachBuffer
{
  public:
    MachBuffer(std::uint32_t entries, std::uint32_t ways);

    /** Block bytes for @p digest, or nullptr on miss. */
    const std::vector<std::uint8_t> *lookup(std::uint32_t digest);

    /** Insert (or refresh) a block under @p digest. */
    void insert(std::uint32_t digest,
                const std::vector<std::uint8_t> &block);

    /** Same, from a raw byte view (the frame-buffer arena path). */
    void insert(std::uint32_t digest, const std::uint8_t *data,
                std::uint32_t size);

    std::uint64_t hitCount() const { return hits_; }
    std::uint64_t missCount() const { return misses_; }
    std::uint64_t insertCount() const { return inserts_; }

    std::uint32_t entries() const { return sets_ * ways_; }

    void resetStats();

    /** Register hit/miss/insert stats under @p prefix. */
    void regStats(StatsRegistry &r, const std::string &prefix) const;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t digest = 0;
        std::vector<std::uint8_t> block;
    };

    Entry &entry(std::uint32_t set, std::uint32_t way);
    std::uint32_t setOf(std::uint32_t digest) const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Entry> store_;
    ReplacementState repl_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t inserts_ = 0;
};

} // namespace vstream

#endif // VSTREAM_DISPLAY_MACH_BUFFER_HH
