#include "display/mach_buffer.hh"

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

MachBuffer::MachBuffer(std::uint32_t entries, std::uint32_t ways)
    : sets_(entries / ways), ways_(ways),
      store_(static_cast<std::size_t>(entries)),
      repl_(ReplPolicy::kLru, sets_, ways_)
{
    vs_assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0,
              "MACH buffer set count must be a power of two");
}

MachBuffer::Entry &
MachBuffer::entry(std::uint32_t set, std::uint32_t way)
{
    return store_[static_cast<std::size_t>(set) * ways_ + way];
}

std::uint32_t
MachBuffer::setOf(std::uint32_t digest) const
{
    return digest & (sets_ - 1);
}

const std::vector<std::uint8_t> *
MachBuffer::lookup(std::uint32_t digest)
{
    const std::uint32_t set = setOf(digest);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entry(set, w);
        if (e.valid && e.digest == digest) {
            ++hits_;
            repl_.touch(set, w);
            return &e.block;
        }
    }
    ++misses_;
    return nullptr;
}

void
MachBuffer::insert(std::uint32_t digest,
                   const std::vector<std::uint8_t> &block)
{
    insert(digest, block.data(),
           static_cast<std::uint32_t>(block.size()));
}

void
MachBuffer::insert(std::uint32_t digest, const std::uint8_t *data,
                   std::uint32_t size)
{
    const std::uint32_t set = setOf(digest);

    // Refresh an existing entry in place.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entry(set, w);
        if (e.valid && e.digest == digest) {
            e.block.assign(data, data + size);
            repl_.touch(set, w);
            return;
        }
    }

    std::uint32_t way = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!entry(set, w).valid) {
            way = w;
            break;
        }
    }
    if (way == ways_) {
        way = repl_.victim(set);
    }

    Entry &e = entry(set, way);
    e.valid = true;
    e.digest = digest;
    e.block.assign(data, data + size);
    repl_.fill(set, way);
    ++inserts_;
}

void
MachBuffer::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    inserts_ = 0;
}

void
MachBuffer::regStats(StatsRegistry &r, const std::string &prefix) const
{
    r.addCallback(prefix + ".hits", "digest records served here",
                  [this] { return static_cast<double>(hits_); });
    r.addCallback(prefix + ".misses", "digest records resolved via DRAM",
                  [this] { return static_cast<double>(misses_); });
    r.addCallback(prefix + ".inserts", "blocks installed",
                  [this] { return static_cast<double>(inserts_); });
}

} // namespace vstream
