/**
 * @file
 * Display-controller configuration (paper Table 2 defaults).
 */

#ifndef VSTREAM_DISPLAY_DISPLAY_CONFIG_HH
#define VSTREAM_DISPLAY_DISPLAY_CONFIG_HH

#include <cstdint>

#include "cache/cache_config.hh"

namespace vstream
{

/** Static display parameters. */
struct DisplayConfig
{
    std::uint32_t refresh_hz = 60;
    /** Display controller + panel interface power. */
    double power_w = 0.12;

    /** Enable the 16 KB direct-mapped display cache (Sec. 5.1). */
    bool use_display_cache = true;
    /** Enable the MACH buffer (digest-indexed block store). */
    bool use_mach_buffer = true;
    /**
     * Checksum-based transaction elimination (the industrial scheme
     * of [9]/[35] the paper relates to): when a frame's checksum
     * equals the frame already on screen, the scan-out is skipped
     * entirely.  Whole-frame granularity only - complementary to
     * MACH's block-level reuse.
     */
    bool transaction_elimination = false;

    /** Display cache geometry: 16 KB direct-mapped, 64 B lines. */
    CacheConfig display_cache = {
        .size_bytes = 16 * 1024,
        .line_bytes = 64,
        .assoc = 1,
        .policy = ReplPolicy::kLru,
        .write_allocate = false,
        .write_back = false,
    };

    /** MACH buffer: 2K entries x 48 B = 96 KB. */
    std::uint32_t mach_buffer_entries = 2048;
    std::uint32_t mach_buffer_ways = 4;

    /** How many recent frames' MACH dumps the DC retains (set from
     * the decoder's MACH count; digest records can reference blocks
     * that far back). */
    std::uint32_t mach_window = 8;

    void validate() const;
};

} // namespace vstream

#endif // VSTREAM_DISPLAY_DISPLAY_CONFIG_HH
