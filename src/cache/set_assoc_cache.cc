#include "cache/set_assoc_cache.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

namespace
{

std::uint32_t
log2u(std::uint64_t v)
{
    std::uint32_t bits = 0;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

} // namespace

SetAssocCache::SetAssocCache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg), sets_(cfg.numSets()),
      ways_(cfg.assoc), line_shift_(log2u(cfg.line_bytes)),
      lines_(static_cast<std::size_t>(cfg.numLines())),
      repl_(cfg.policy, sets_, ways_)
{
    cfg_.validate();
}

std::uint32_t
SetAssocCache::setIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>((line_addr >> line_shift_) &
                                      (sets_ - 1));
}

std::uint64_t
SetAssocCache::tagOf(Addr line_addr) const
{
    return (line_addr >> line_shift_) / sets_;
}

Addr
SetAssocCache::lineAddr(std::uint32_t set, std::uint64_t tag) const
{
    return ((tag * sets_) + set) << line_shift_;
}

SetAssocCache::Line &
SetAssocCache::line(std::uint32_t set, std::uint32_t way)
{
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

const SetAssocCache::Line &
SetAssocCache::line(std::uint32_t set, std::uint32_t way) const
{
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

// vstream:allow(no-hotpath-alloc) appends into the caller's reused
// summary scratch; its vectors keep their capacity across accesses
bool
SetAssocCache::accessLine(Addr line_addr, MemOp op,
                          CacheAccessSummary &summary)
{
    const std::uint32_t set = setIndex(line_addr);
    const std::uint64_t tag = tagOf(line_addr);

    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            ++hits_;
            repl_.touch(set, w);
            if (op == MemOp::kWrite) {
                l.dirty = cfg_.write_back;
            }
            return true;
        }
    }

    ++misses_;

    if (op == MemOp::kWrite && !cfg_.write_allocate) {
        // Streaming store: bypass, no state change.
        return false;
    }

    // Find an invalid way; otherwise evict the policy's victim.
    std::uint32_t victim_way = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!line(set, w).valid) {
            victim_way = w;
            break;
        }
    }
    if (victim_way == ways_) {
        victim_way = repl_.victim(set);
        Line &v = line(set, victim_way);
        ++evictions_;
        if (v.dirty) {
            ++writebacks_;
            summary.writebacks.push_back(lineAddr(set, v.tag));
        }
    }

    Line &l = line(set, victim_way);
    l.valid = true;
    l.tag = tag;
    l.dirty = (op == MemOp::kWrite) && cfg_.write_back;
    repl_.fill(set, victim_way);

    if (op == MemOp::kRead || !cfg_.write_back) {
        // A read miss (or write-through write) fetches the line.
        summary.fills.push_back(line_addr);
    } else if (op == MemOp::kWrite) {
        // Write-allocate: fetch-on-write (whole line brought in).
        summary.fills.push_back(line_addr);
    }
    return false;
}

CacheAccessSummary
SetAssocCache::access(Addr addr, std::uint32_t size, MemOp op)
{
    CacheAccessSummary summary;
    accessInto(addr, size, op, summary);
    return summary;
}

// vstream:hot
void
SetAssocCache::accessInto(Addr addr, std::uint32_t size, MemOp op,
                          CacheAccessSummary &summary)
{
    vs_assert(size > 0, "zero-size cache access");

    summary.lines = 0;
    summary.hits = 0;
    summary.misses = 0;
    summary.writebacks.clear();
    summary.fills.clear();
    const Addr first = addr >> line_shift_;
    const Addr last = (addr + size - 1) >> line_shift_;
    for (Addr l = first; l <= last; ++l) {
        ++summary.lines;
        if (accessLine(l << line_shift_, op, summary)) {
            ++summary.hits;
        } else {
            ++summary.misses;
        }
    }
}

bool
SetAssocCache::contains(Addr addr) const
{
    const Addr line_addr = addr >> line_shift_ << line_shift_;
    const std::uint32_t set = setIndex(line_addr);
    const std::uint64_t tag = tagOf(line_addr);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            return true;
        }
    }
    return false;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
}

std::uint64_t
SetAssocCache::invalidateRange(Addr addr, std::uint64_t size)
{
    if (size == 0) {
        return 0;
    }
    std::uint64_t invalidated = 0;
    const Addr first = addr >> line_shift_;
    const Addr last = (addr + size - 1) >> line_shift_;

    // For ranges larger than the cache, walking the cache itself is
    // cheaper than walking the address range.
    if (last - first + 1 >= lines_.size()) {
        for (std::uint32_t set = 0; set < sets_; ++set) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                Line &l = line(set, w);
                if (!l.valid) {
                    continue;
                }
                const Addr la = lineAddr(set, l.tag);
                if (la >= (first << line_shift_) &&
                    la <= (last << line_shift_)) {
                    l.valid = false;
                    l.dirty = false;
                    ++invalidated;
                }
            }
        }
        return invalidated;
    }

    for (Addr ln = first; ln <= last; ++ln) {
        const Addr line_addr = ln << line_shift_;
        const std::uint32_t set = setIndex(line_addr);
        const std::uint64_t tag = tagOf(line_addr);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            Line &l = line(set, w);
            if (l.valid && l.tag == tag) {
                l.valid = false;
                l.dirty = false;
                ++invalidated;
            }
        }
    }
    return invalidated;
}

std::vector<Addr>
SetAssocCache::flush()
{
    std::vector<Addr> dirty_lines;
    for (std::uint32_t set = 0; set < sets_; ++set) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            Line &l = line(set, w);
            if (l.valid && l.dirty) {
                dirty_lines.push_back(lineAddr(set, l.tag));
            }
            l.valid = false;
            l.dirty = false;
        }
    }
    writebacks_ += dirty_lines.size();
    return dirty_lines;
}

double
SetAssocCache::missRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) /
                       static_cast<double>(total)
                 : 0.0;
}

void
SetAssocCache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    writebacks_ = 0;
}

void
SetAssocCache::regStats(StatsRegistry &r) const
{
    r.addCallback(name_ + ".hits", "lines hit",
                  [this] { return static_cast<double>(hits_); });
    r.addCallback(name_ + ".misses", "lines missed",
                  [this] { return static_cast<double>(misses_); });
    r.addCallback(name_ + ".missRate", "misses / accesses",
                  [this] { return missRate(); });
    r.addCallback(name_ + ".evictions", "valid lines evicted",
                  [this] { return static_cast<double>(evictions_); });
    r.addCallback(name_ + ".writebacks", "dirty lines written back",
                  [this] { return static_cast<double>(writebacks_); });
}

} // namespace vstream
