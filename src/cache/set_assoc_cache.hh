/**
 * @file
 * Generic address-indexed set-associative cache model.
 *
 * Instantiated as the video decoder's internal cache (Fig. 7a sweeps
 * it from 32 KB to 512 KB) and, with assoc=1, as the 16 KB display
 * cache.  The model tracks tags and dirty bits only; data correctness
 * is the client's concern (the simulator keeps pixel data in Frame
 * objects).
 */

#ifndef VSTREAM_CACHE_SET_ASSOC_CACHE_HH
#define VSTREAM_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/replacement.hh"
#include "mem/mem_request.hh"

namespace vstream
{

class StatsRegistry;

/** Outcome of a (possibly multi-line) cache access. */
struct CacheAccessSummary
{
    std::uint32_t lines = 0;
    std::uint32_t hits = 0;
    std::uint32_t misses = 0;
    /** Line addresses of dirty victims that must be written back. */
    std::vector<Addr> writebacks;
    /** Line addresses that must be fetched from memory. */
    std::vector<Addr> fills;

    bool allHit() const { return misses == 0; }
};

/** Tag-only set-associative cache. */
class SetAssocCache
{
  public:
    SetAssocCache(std::string name, const CacheConfig &cfg);

    /**
     * Access [addr, addr+size) with operation @p op.
     *
     * Reads allocate on miss.  Writes allocate only when the config
     * enables write_allocate; otherwise write misses bypass the cache
     * entirely (streaming store).
     */
    CacheAccessSummary access(Addr addr, std::uint32_t size, MemOp op);

    /**
     * Zero-alloc variant of access(): results land in @p summary,
     * whose vectors are cleared and reused (hot paths pass a member
     * scratch so steady-state accesses never allocate).
     */
    void accessInto(Addr addr, std::uint32_t size, MemOp op,
                    CacheAccessSummary &summary);

    /** Probe without updating any state. */
    bool contains(Addr addr) const;

    /** Invalidate everything (dirty contents dropped). */
    void invalidateAll();

    /**
     * Invalidate every line covering [addr, addr+size) (dirty data
     * dropped) - the coherence action for a DMA engine overwriting
     * memory behind the cache.
     *
     * @return number of lines invalidated.
     */
    std::uint64_t invalidateRange(Addr addr, std::uint64_t size);

    /**
     * Flush: returns dirty line addresses and leaves the cache
     * clean+empty.
     */
    std::vector<Addr> flush();

    const CacheConfig &config() const { return cfg_; }
    const std::string &name() const { return name_; }

    std::uint64_t hitCount() const { return hits_; }
    std::uint64_t missCount() const { return misses_; }
    std::uint64_t evictionCount() const { return evictions_; }
    std::uint64_t writebackCount() const { return writebacks_; }
    double missRate() const;

    void resetStats();

    /** Register hit/miss/eviction stats under this cache's name. */
    void regStats(StatsRegistry &r) const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
    };

    std::uint32_t setIndex(Addr line_addr) const;
    std::uint64_t tagOf(Addr line_addr) const;
    Addr lineAddr(std::uint32_t set, std::uint64_t tag) const;
    Line &line(std::uint32_t set, std::uint32_t way);
    const Line &line(std::uint32_t set, std::uint32_t way) const;

    /** Access a single line; returns hit, may add to summary. */
    bool accessLine(Addr line_addr, MemOp op, CacheAccessSummary &summary);

    std::string name_;
    CacheConfig cfg_;
    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint32_t line_shift_;
    std::vector<Line> lines_;
    ReplacementState repl_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace vstream

#endif // VSTREAM_CACHE_SET_ASSOC_CACHE_HH
