/**
 * @file
 * Victim selection for one cache set.
 */

#ifndef VSTREAM_CACHE_REPLACEMENT_HH
#define VSTREAM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "sim/random.hh"

namespace vstream
{

/**
 * Per-way recency/insertion metadata for victim selection.
 *
 * One instance serves all sets of a cache; callers pass the slice of
 * way-state for the set being operated on.
 */
class ReplacementState
{
  public:
    ReplacementState(ReplPolicy policy, std::uint32_t sets,
                     std::uint32_t ways, std::uint64_t seed = 0x5eedULL);

    /** Note a hit on (set, way). */
    void touch(std::uint32_t set, std::uint32_t way);

    /** Note a fill into (set, way). */
    void fill(std::uint32_t set, std::uint32_t way);

    /** Choose the victim way in @p set (all ways assumed valid). */
    std::uint32_t victim(std::uint32_t set);

    /**
     * Restore the freshly constructed state (stamps, clock, rng) so a
     * recycled cache replays the exact victim sequence a new one
     * would.  Keeps the stamp storage.
     */
    void reset(std::uint64_t seed = 0x5eedULL);

    ReplPolicy policy() const { return policy_; }

  private:
    std::uint64_t &stamp(std::uint32_t set, std::uint32_t way);

    ReplPolicy policy_;
    std::uint32_t ways_;
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
    Random rng_;
};

} // namespace vstream

#endif // VSTREAM_CACHE_REPLACEMENT_HH
