/**
 * @file
 * Configuration for the generic set-associative cache model.
 */

#ifndef VSTREAM_CACHE_CACHE_CONFIG_HH
#define VSTREAM_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

namespace vstream
{

/** Replacement policies supported by SetAssocCache. */
enum class ReplPolicy
{
    kLru,
    kFifo,
    kRandom,
};

std::string replPolicyName(ReplPolicy p);

/** Geometry and behaviour of a cache instance. */
struct CacheConfig
{
    /** Total data capacity, bytes. */
    std::uint64_t size_bytes = 32 * 1024;
    /** Line size, bytes. */
    std::uint32_t line_bytes = 64;
    /** Ways per set; 1 = direct-mapped. */
    std::uint32_t assoc = 4;
    ReplPolicy policy = ReplPolicy::kLru;
    /** Allocate lines on write misses? Streaming writers disable
     * this so frame writeback does not thrash the cache. */
    bool write_allocate = true;
    /** Dirty lines written back on eviction (vs write-through). */
    bool write_back = true;

    std::uint32_t numLines() const;
    std::uint32_t numSets() const;

    /** Abort if sizes are not consistent powers of two. */
    void validate() const;
};

} // namespace vstream

#endif // VSTREAM_CACHE_CACHE_CONFIG_HH
