#include "cache/replacement.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vstream
{

ReplacementState::ReplacementState(ReplPolicy policy, std::uint32_t sets,
                                   std::uint32_t ways, std::uint64_t seed)
    : policy_(policy), ways_(ways),
      stamps_(static_cast<std::size_t>(sets) * ways, 0), rng_(seed)
{
    vs_assert(sets > 0 && ways > 0, "empty replacement state");
}

std::uint64_t &
ReplacementState::stamp(std::uint32_t set, std::uint32_t way)
{
    return stamps_[static_cast<std::size_t>(set) * ways_ + way];
}

void
ReplacementState::touch(std::uint32_t set, std::uint32_t way)
{
    if (policy_ == ReplPolicy::kLru) {
        stamp(set, way) = ++clock_;
    }
    // FIFO and Random ignore hits.
}

void
ReplacementState::fill(std::uint32_t set, std::uint32_t way)
{
    if (policy_ != ReplPolicy::kRandom) {
        stamp(set, way) = ++clock_;
    }
}

void
ReplacementState::reset(std::uint64_t seed)
{
    std::fill(stamps_.begin(), stamps_.end(), 0);
    clock_ = 0;
    rng_.seed(seed);
}

std::uint32_t
ReplacementState::victim(std::uint32_t set)
{
    if (policy_ == ReplPolicy::kRandom) {
        return static_cast<std::uint32_t>(rng_.uniformInt(0, ways_ - 1));
    }

    std::uint32_t best = 0;
    std::uint64_t best_stamp = stamp(set, 0);
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (stamp(set, w) < best_stamp) {
            best_stamp = stamp(set, w);
            best = w;
        }
    }
    return best;
}

} // namespace vstream
