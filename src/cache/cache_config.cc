#include "cache/cache_config.hh"

#include "sim/logging.hh"

namespace vstream
{

std::string
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::kLru:
        return "lru";
      case ReplPolicy::kFifo:
        return "fifo";
      case ReplPolicy::kRandom:
        return "random";
    }
    return "?";
}

std::uint32_t
CacheConfig::numLines() const
{
    return static_cast<std::uint32_t>(size_bytes / line_bytes);
}

std::uint32_t
CacheConfig::numSets() const
{
    return numLines() / assoc;
}

void
CacheConfig::validate() const
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0) {
        vs_fatal("cache line size must be a power of two");
    }
    if (size_bytes == 0 || size_bytes % line_bytes != 0) {
        vs_fatal("cache size must be a multiple of the line size");
    }
    if (assoc == 0 || numLines() % assoc != 0) {
        vs_fatal("associativity must divide the line count");
    }
    const std::uint32_t sets = numSets();
    if (sets == 0 || (sets & (sets - 1)) != 0) {
        vs_fatal("number of sets must be a power of two, got ", sets);
    }
}

} // namespace vstream
