#include "core/mach_config.hh"

#include "sim/logging.hh"

namespace vstream
{

void
MachConfig::validate() const
{
    if (num_machs == 0) {
        vs_fatal("num_machs must be >= 1");
    }
    if (ways == 0 || entries % ways != 0) {
        vs_fatal("MACH associativity must divide the entry count");
    }
    const std::uint32_t s = sets();
    if (s == 0 || (s & (s - 1)) != 0) {
        vs_fatal("MACH set count must be a power of two, got ", s);
    }
    if (co_mach && (co_mach_entries == 0 || co_mach_entries % ways != 0)) {
        vs_fatal("CO-MACH entries must be a non-zero multiple of ways");
    }
    if (pointer_bytes == 0 || digest_bytes == 0) {
        vs_fatal("metadata field widths must be non-zero");
    }
    if (coalesce_bytes == 0 || (coalesce_bytes & (coalesce_bytes - 1)) != 0) {
        vs_fatal("coalesce_bytes must be a power of two");
    }
}

} // namespace vstream
