/**
 * @file
 * Configuration of the MAcroblock caCHe (MACH) subsystem.
 *
 * Defaults follow the paper's chosen design point: 8 per-frame MACHs
 * of 256 entries each (4-way, LRU, indexed by the low 6 digest bits),
 * CRC32 digests, 4 B pointers, 3 B gab bases, and the CACTI-derived
 * power numbers of Table 2.
 */

#ifndef VSTREAM_CORE_MACH_CONFIG_HH
#define VSTREAM_CORE_MACH_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "hash/hasher.hh"

namespace vstream
{

/** Static parameters of MACH at the video-decoder side. */
struct MachConfig
{
    /** Number of per-frame MACHs retained (current + previous 7). */
    std::uint32_t num_machs = 8;
    /** Entries per MACH. */
    std::uint32_t entries = 256;
    /** Set associativity. */
    std::uint32_t ways = 4;
    /** Digest function (Fig. 12d compares crc32/md5/sha1). */
    HashKind hash = HashKind::kCrc32;
    /** Content representation: gradient blocks (gab) vs raw (mab). */
    bool use_gradient = false;

    /** Enable the CO-MACH collision detector (CRC32||CRC16 tags). */
    bool co_mach = false;
    /**
     * Byte-compare the stored block against the candidate on every
     * hit.  Catches even digest+aux collisions (including injected
     * ones) at the cost of re-reading the 48 B block; a mismatch
     * demotes the hit to a miss and the writeback falls back to a
     * full unique write.
     */
    bool verify_on_hit = false;
    /** CO-MACH entries (1.5 KB at 10 B/entry ~= 128, 4-way). */
    std::uint32_t co_mach_entries = 128;

    /** Metadata field widths, bytes. */
    std::uint32_t pointer_bytes = 4;
    std::uint32_t base_bytes = 3;
    std::uint32_t digest_bytes = 4;

    /** Coalescing-buffer size for metadata write combining. */
    std::uint32_t coalesce_bytes = 64;

    /**
     * Pre-sized capacity of the per-digest match-count table that
     * feeds the Fig. 9b top-match shares.  Reserving it up front
     * keeps steady-state serving allocation-free for digest
     * populations up to this size; larger populations grow the table
     * geometrically (a handful of rehashes over a whole playback).
     */
    std::size_t match_track_reserve = 16384;

    // --- power overheads (paper Table 2 / Sec. 6.3) --------------------
    /** 8 KB MACH at the VD. */
    double mach_power_w = 5.7e-3;
    /** 16 KB display cache at the DC. */
    double display_cache_power_w = 4.1e-3;
    /** 96 KB MACH buffer at the DC. */
    double mach_buffer_power_w = 25.4e-3;
    /** CO-MACH + CRC16 generator. */
    double co_mach_power_w = 1.4e-3;

    std::uint32_t sets() const { return entries / ways; }

    void validate() const;
};

} // namespace vstream

#endif // VSTREAM_CORE_MACH_CONFIG_HH
