/**
 * @file
 * Open-addressing hash containers for integer keys.
 *
 * The MACH hot loops (match counting, frame-buffer block offsets,
 * similarity windows) all map small integer keys to small values and
 * never erase individual entries — they only grow and are dropped
 * wholesale.  std::unordered_map pays a node allocation per insert
 * and a pointer chase per probe for that pattern; these tables keep
 * every slot in one contiguous vector with power-of-two capacity and
 * linear probing, so the common probe touches one cache line and
 * insertion allocates only on growth.
 *
 * Deliberately minimal: no iterators (forEach instead), and keys must
 * be trivially copyable integers.  Iteration order depends on
 * hashing, so callers that feed output must sort — the same rule
 * std::unordered_map already imposed.
 *
 * erase() uses tombstones: probes walk over them, inserts reuse
 * them, and any rehash drops them.  A table that never erases never
 * sees a tombstone, so its probe sequences, growth points and memory
 * layout are bit-for-bit those of the original insert-only table —
 * the determinism contract (byte-identical stats JSON) cannot shift
 * for existing callers.
 */

#ifndef VSTREAM_CORE_FLAT_TABLE_HH
#define VSTREAM_CORE_FLAT_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace vstream
{

/** SplitMix64 finalizer: cheap, well-distributed integer hash. */
constexpr std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Flat open-addressing map from an integer key to a value.
 * Per-entry erase leaves a tombstone; clear() drops everything.
 */
template <typename Key, typename Value>
class FlatMap
{
    static_assert(std::is_integral_v<Key>,
                  "FlatMap keys must be integers");

  public:
    FlatMap() = default;

    /** Entries currently stored. */
    std::size_t size() const { return size_; }

    /** Slots allocated (a power of two, or 0 before first insert).
     * Exposed so tests can pin growth points and tombstone reuse. */
    std::size_t capacity() const { return slots_.size(); }

    bool empty() const { return size_ == 0; }

    /** Drop all entries (and tombstones) but keep the allocation. */
    void
    clear()
    {
        for (Slot &s : slots_) {
            s.used = false;
            s.tomb = false;
        }
        size_ = 0;
        tombs_ = 0;
    }

    /** Pre-size so @p n entries insert without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = 16;
        while (want * 3 < n * 4) { // keep load factor under 3/4
            want <<= 1;
        }
        if (want > slots_.size()) {
            rehash(want);
        }
    }

    /** Pointer to the value for @p key, or nullptr if absent. */
    // vstream:hot
    Value *
    find(Key key)
    {
        if (slots_.empty()) {
            return nullptr;
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i =
            static_cast<std::size_t>(
                mixHash(static_cast<std::uint64_t>(key))) &
            mask;
        while (slots_[i].used || slots_[i].tomb) {
            if (slots_[i].used && slots_[i].key == key) {
                return &slots_[i].value;
            }
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    const Value *
    find(Key key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /**
     * Value for @p key, inserting a value-initialized entry when
     * absent (the ++counts[digest] idiom).
     */
    // vstream:hot
    Value &
    operator[](Key key)
    {
        if (slots_.empty() ||
            (size_ + tombs_ + 1) * 4 > slots_.size() * 3) {
            // Grow only when live entries demand it; a table crossing
            // the load threshold on tombstones alone rehashes at the
            // same capacity, which reclaims every tombstone.
            const std::size_t cap =
                slots_.empty()
                    ? 16
                    : ((size_ + 1) * 4 > slots_.size() * 3
                           ? slots_.size() * 2
                           : slots_.size());
            rehash(cap);
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i =
            static_cast<std::size_t>(
                mixHash(static_cast<std::uint64_t>(key))) &
            mask;
        std::size_t first_tomb = kNoSlot;
        while (slots_[i].used || slots_[i].tomb) {
            if (slots_[i].used) {
                if (slots_[i].key == key) {
                    return slots_[i].value;
                }
            } else if (first_tomb == kNoSlot) {
                first_tomb = i;
            }
            i = (i + 1) & mask;
        }
        if (first_tomb != kNoSlot) {
            i = first_tomb;
            slots_[i].tomb = false;
            --tombs_;
        }
        slots_[i].used = true;
        slots_[i].key = key;
        slots_[i].value = Value{};
        ++size_;
        return slots_[i].value;
    }

    /** Remove @p key; true when it was present. */
    bool
    erase(Key key)
    {
        if (slots_.empty()) {
            return false;
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i =
            static_cast<std::size_t>(
                mixHash(static_cast<std::uint64_t>(key))) &
            mask;
        while (slots_[i].used || slots_[i].tomb) {
            if (slots_[i].used && slots_[i].key == key) {
                slots_[i].used = false;
                slots_[i].tomb = true;
                slots_[i].value = Value{}; // release held resources
                --size_;
                ++tombs_;
                return true;
            }
            i = (i + 1) & mask;
        }
        return false;
    }

    /** Visit every entry as fn(key, value); unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_) {
            if (s.used) {
                fn(s.key, s.value);
            }
        }
    }

  private:
    static constexpr std::size_t kNoSlot =
        static_cast<std::size_t>(-1);

    struct Slot
    {
        Key key{};
        Value value{};
        bool used = false;
        bool tomb = false;
    };

    void
    rehash(std::size_t capacity)
    {
        vs_assert((capacity & (capacity - 1)) == 0,
                  "flat table capacity must be a power of two");
        std::vector<Slot> old = std::move(slots_);
        slots_.clear();
        slots_.resize(capacity);
        const std::size_t mask = capacity - 1;
        for (Slot &s : old) {
            if (!s.used) {
                continue; // empty or tombstone: dropped either way
            }
            std::size_t i =
                static_cast<std::size_t>(
                    mixHash(static_cast<std::uint64_t>(s.key))) &
                mask;
            while (slots_[i].used) {
                i = (i + 1) & mask;
            }
            slots_[i] = std::move(s);
        }
        tombs_ = 0;
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    std::size_t tombs_ = 0;
};

/** Flat open-addressing set of integer keys. */
template <typename Key>
class FlatSet
{
    static_assert(std::is_integral_v<Key>,
                  "FlatSet keys must be integers");

  public:
    FlatSet() = default;

    std::size_t size() const { return map_.size(); }

    std::size_t capacity() const { return map_.capacity(); }

    bool empty() const { return map_.empty(); }

    void clear() { map_.clear(); }

    void reserve(std::size_t n) { map_.reserve(n); }

    bool contains(Key key) const { return map_.find(key) != nullptr; }

    /** Insert @p key; true when it was not present before. */
    // vstream:hot
    bool
    insert(Key key)
    {
        const std::size_t before = map_.size();
        map_[key] = true;
        return map_.size() != before;
    }

    /** Remove @p key; true when it was present. */
    bool erase(Key key) { return map_.erase(key); }

  private:
    FlatMap<Key, bool> map_;
};

} // namespace vstream

#endif // VSTREAM_CORE_FLAT_TABLE_HH
