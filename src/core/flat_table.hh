/**
 * @file
 * Open-addressing hash containers for integer keys.
 *
 * The MACH hot loops (match counting, frame-buffer block offsets,
 * similarity windows) all map small integer keys to small values and
 * never erase individual entries — they only grow and are dropped
 * wholesale.  std::unordered_map pays a node allocation per insert
 * and a pointer chase per probe for that pattern; these tables keep
 * every slot in one contiguous vector with power-of-two capacity and
 * linear probing, so the common probe touches one cache line and
 * insertion allocates only on growth.
 *
 * Deliberately minimal: no erase, no iterators (forEach instead), and
 * keys must be trivially copyable integers.  Iteration order depends
 * on hashing, so callers that feed output must sort — the same rule
 * std::unordered_map already imposed.
 */

#ifndef VSTREAM_CORE_FLAT_TABLE_HH
#define VSTREAM_CORE_FLAT_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"

namespace vstream
{

/** SplitMix64 finalizer: cheap, well-distributed integer hash. */
constexpr std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Flat open-addressing map from an integer key to a value.
 * Insert-only (no per-entry erase); clear() drops everything.
 */
template <typename Key, typename Value>
class FlatMap
{
    static_assert(std::is_integral_v<Key>,
                  "FlatMap keys must be integers");

  public:
    FlatMap() = default;

    /** Entries currently stored. */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** Drop all entries but keep the allocation. */
    void
    clear()
    {
        for (Slot &s : slots_) {
            s.used = false;
        }
        size_ = 0;
    }

    /** Pre-size so @p n entries insert without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = 16;
        while (want * 3 < n * 4) { // keep load factor under 3/4
            want <<= 1;
        }
        if (want > slots_.size()) {
            rehash(want);
        }
    }

    /** Pointer to the value for @p key, or nullptr if absent. */
    // vstream:hot
    Value *
    find(Key key)
    {
        if (slots_.empty()) {
            return nullptr;
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i =
            static_cast<std::size_t>(
                mixHash(static_cast<std::uint64_t>(key))) &
            mask;
        while (slots_[i].used) {
            if (slots_[i].key == key) {
                return &slots_[i].value;
            }
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    const Value *
    find(Key key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /**
     * Value for @p key, inserting a value-initialized entry when
     * absent (the ++counts[digest] idiom).
     */
    // vstream:hot
    Value &
    operator[](Key key)
    {
        if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
            rehash(slots_.empty() ? 16 : slots_.size() * 2);
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i =
            static_cast<std::size_t>(
                mixHash(static_cast<std::uint64_t>(key))) &
            mask;
        while (slots_[i].used) {
            if (slots_[i].key == key) {
                return slots_[i].value;
            }
            i = (i + 1) & mask;
        }
        slots_[i].used = true;
        slots_[i].key = key;
        slots_[i].value = Value{};
        ++size_;
        return slots_[i].value;
    }

    /** Visit every entry as fn(key, value); unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_) {
            if (s.used) {
                fn(s.key, s.value);
            }
        }
    }

  private:
    struct Slot
    {
        Key key{};
        Value value{};
        bool used = false;
    };

    void
    rehash(std::size_t capacity)
    {
        vs_assert((capacity & (capacity - 1)) == 0,
                  "flat table capacity must be a power of two");
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(capacity, Slot{});
        const std::size_t mask = capacity - 1;
        for (const Slot &s : old) {
            if (!s.used) {
                continue;
            }
            std::size_t i =
                static_cast<std::size_t>(
                    mixHash(static_cast<std::uint64_t>(s.key))) &
                mask;
            while (slots_[i].used) {
                i = (i + 1) & mask;
            }
            slots_[i] = s;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

/** Flat open-addressing set of integer keys; insert-only. */
template <typename Key>
class FlatSet
{
    static_assert(std::is_integral_v<Key>,
                  "FlatSet keys must be integers");

  public:
    FlatSet() = default;

    std::size_t size() const { return map_.size(); }

    bool empty() const { return map_.empty(); }

    void clear() { map_.clear(); }

    void reserve(std::size_t n) { map_.reserve(n); }

    bool contains(Key key) const { return map_.find(key) != nullptr; }

    /** Insert @p key; true when it was not present before. */
    // vstream:hot
    bool
    insert(Key key)
    {
        const std::size_t before = map_.size();
        map_[key] = true;
        return map_.size() != before;
    }

  private:
    FlatMap<Key, bool> map_;
};

} // namespace vstream

#endif // VSTREAM_CORE_FLAT_TABLE_HH
