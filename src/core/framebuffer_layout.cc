#include "core/framebuffer_layout.hh"

namespace vstream
{

std::string
layoutKindName(LayoutKind k)
{
    switch (k) {
      case LayoutKind::kLinear:
        return "linear";
      case LayoutKind::kPointer:
        return "pointer";
      case LayoutKind::kPointerDigest:
        return "pointer+digest";
    }
    return "?";
}

FrameLayout::FrameLayout(std::uint64_t frame_index, LayoutKind kind,
                         std::uint32_t mab_count, std::uint32_t mab_bytes,
                         bool gradient_mode)
    : frame_index_(frame_index), kind_(kind), mab_bytes_(mab_bytes),
      gradient_mode_(gradient_mode), records_(mab_count)
{
}

void
FrameLayout::reinit(std::uint64_t frame_index, LayoutKind kind,
                    std::uint32_t mab_count, std::uint32_t mab_bytes,
                    bool gradient_mode)
{
    frame_index_ = frame_index;
    kind_ = kind;
    mab_bytes_ = mab_bytes;
    gradient_mode_ = gradient_mode;
    records_.assign(mab_count, MabRecord{});
    meta_base_ = 0;
    data_base_ = 0;
    mach_dump_base_ = 0;
    mach_dump_bytes_ = 0;
    data_bytes_ = 0;
    meta_bytes_ = 0;
    source_checksum_ = 0;
    mach_dump_.clear();
}

std::uint64_t
FrameLayout::countStorage(MabStorage s) const
{
    std::uint64_t n = 0;
    for (const auto &r : records_) {
        if (r.storage == s) {
            ++n;
        }
    }
    return n;
}

} // namespace vstream
