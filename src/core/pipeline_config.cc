#include "core/pipeline_config.hh"

#include "decoder/decode_cost_model.hh"
#include "sim/logging.hh"

namespace vstream
{

std::string
schemeKey(Scheme s)
{
    switch (s) {
      case Scheme::kBaseline:
        return "L";
      case Scheme::kBatching:
        return "B";
      case Scheme::kRacing:
        return "R";
      case Scheme::kRaceToSleep:
        return "S";
      case Scheme::kMab:
        return "M";
      case Scheme::kGab:
        return "G";
    }
    return "?";
}

std::string
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::kBaseline:
        return "Baseline";
      case Scheme::kBatching:
        return "Batching";
      case Scheme::kRacing:
        return "Racing";
      case Scheme::kRaceToSleep:
        return "Race-to-Sleep";
      case Scheme::kMab:
        return "Race-to-Sleep+MAB";
      case Scheme::kGab:
        return "Race-to-Sleep+GAB";
    }
    return "?";
}

SchemeConfig
SchemeConfig::make(Scheme s, std::uint32_t batch_frames)
{
    SchemeConfig c;
    c.scheme = s;
    switch (s) {
      case Scheme::kBaseline:
        break;
      case Scheme::kBatching:
        c.batch = batch_frames;
        break;
      case Scheme::kRacing:
        c.freq = VdFrequency::kHigh;
        break;
      case Scheme::kRaceToSleep:
        c.batch = batch_frames;
        c.freq = VdFrequency::kHigh;
        break;
      case Scheme::kMab:
      case Scheme::kGab:
        c.batch = batch_frames;
        c.freq = VdFrequency::kHigh;
        c.mach = true;
        c.gradient = (s == Scheme::kGab);
        c.layout = LayoutKind::kPointerDigest;
        c.display_cache = true;
        c.mach_buffer = true;
        break;
    }
    return c;
}

double
PipelineConfig::trafficEnergyScale() const
{
    const double native = 3840.0 * 2160.0;
    const double sim = static_cast<double>(profile.width) *
                       static_cast<double>(profile.height);
    return native / sim;
}

void
PipelineConfig::finalize()
{
    profile.validate();

    // Display-side features follow the scheme.
    display.use_display_cache = scheme.display_cache;
    display.use_mach_buffer = scheme.mach_buffer;
    display.transaction_elimination = scheme.transaction_elimination;
    if (scheme.mach) {
        display.mach_window = mach.num_machs;
    }

    // MACH representation follows the scheme.
    mach.use_gradient = scheme.gradient;
    mach.co_mach = scheme.co_mach;

    // Row-open timeout: the starvation bound sits between the mab
    // arrival spacing at the high and low VD frequencies, so racing
    // keeps rows open across consecutive accesses while the baseline
    // frequency re-activates them (Sec. 3.2, Fig. 5a).
    const DecodeCostModel cost(profile, decoder.power, decoder.cost);
    const double low_spacing_s = cost.meanMabSeconds(VdFrequency::kLow);
    dram.row_open_timeout = secondsToTicks(0.75 * low_spacing_s);

    validate();
}

void
PipelineConfig::validate() const
{
    profile.validate();
    dram.validate();
    decoder.validate();
    display.validate();
    mach.validate();
    if (scheme.batch == 0) {
        vs_fatal("batch size must be >= 1");
    }
    if (scheme.mach && scheme.layout == LayoutKind::kLinear) {
        vs_fatal("MACH schemes require a pointer-based layout");
    }
    if (scheme.mach_buffer &&
        scheme.layout != LayoutKind::kPointerDigest) {
        vs_fatal("the MACH buffer requires the pointer+digest layout");
    }
    if (preroll_frames == 0) {
        vs_fatal("need at least one pre-rolled frame");
    }
    faults.validate();
    arrival.validate();
}

} // namespace vstream
