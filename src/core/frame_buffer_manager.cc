#include "core/frame_buffer_manager.hh"

#include <cstring>

#include "sim/logging.hh"

namespace vstream
{

FrameBufferManager::FrameBufferManager(MemorySystem &mem,
                                       std::uint32_t mab_count,
                                       std::uint32_t mab_bytes,
                                       std::uint64_t mach_dump_bytes)
    : mem_(mem),
      // Worst-case metadata: a 4 B pointer/digest stream and a 3 B
      // base stream (kept in disjoint halves with slack so the two
      // write-combining cursors never collide) plus the 1 bit/mab
      // pointer-vs-digest bitmap.
      meta_capacity_(static_cast<std::uint64_t>(mab_count) * 9 +
                     (mab_count + 7) / 8 + 128),
      data_capacity_(static_cast<std::uint64_t>(mab_count) * mab_bytes),
      mach_dump_capacity_(mach_dump_bytes)
{
}

BufferSlot &
FrameBufferManager::acquire(std::uint64_t frame_index)
{
    // The pool recycles the lowest-indexed free slot (preserving the
    // historical first-free scan order) or constructs a new one; the
    // make callback runs only on growth, so the DRAM regions are
    // allocated exactly once per slot.
    BufferSlot &slot = slots_.acquire([this] {
        BufferSlot fresh;
        fresh.arena.reserve(data_capacity_);
        fresh.meta_base = mem_.allocate(meta_capacity_, "fb.meta");
        fresh.data_base = mem_.allocate(data_capacity_, "fb.data");
        fresh.mach_dump_base =
            mach_dump_capacity_
                ? mem_.allocate(mach_dump_capacity_, "fb.machdump")
                : 0;
        fresh.meta_capacity = meta_capacity_;
        fresh.data_capacity = data_capacity_;
        fresh.mach_dump_capacity = mach_dump_capacity_;
        return fresh;
    });
    slot.in_use = true;
    slot.frame_index = frame_index;
    slot.arena.clear();
    slot.block_index.clear();
    return slot;
}

void
FrameBufferManager::release(std::uint64_t frame_index)
{
    for (std::size_t i = 0; i < slots_.allocated(); ++i) {
        BufferSlot &slot = slots_.at(i);
        if (slot.in_use && slot.frame_index == frame_index) {
            slot.in_use = false;
            slots_.release(slot);
            return;
        }
    }
}

BufferSlot *
FrameBufferManager::find(std::uint64_t frame_index)
{
    for (std::size_t i = 0; i < slots_.allocated(); ++i) {
        BufferSlot &slot = slots_.at(i);
        if (slot.in_use && slot.frame_index == frame_index) {
            return &slot;
        }
    }
    return nullptr;
}

const BufferSlot *
FrameBufferManager::find(std::uint64_t frame_index) const
{
    for (std::size_t i = 0; i < slots_.allocated(); ++i) {
        const BufferSlot &slot = slots_.at(i);
        if (slot.in_use && slot.frame_index == frame_index) {
            return &slot;
        }
    }
    return nullptr;
}

BufferSlot *
FrameBufferManager::slotContaining(Addr addr)
{
    for (std::size_t i = 0; i < slots_.allocated(); ++i) {
        BufferSlot &slot = slots_.at(i);
        if (addr >= slot.data_base &&
            addr < slot.data_base + slot.data_capacity) {
            return &slot;
        }
    }
    return nullptr;
}

const BufferSlot *
FrameBufferManager::slotContaining(Addr addr) const
{
    for (std::size_t i = 0; i < slots_.allocated(); ++i) {
        const BufferSlot &slot = slots_.at(i);
        if (addr >= slot.data_base &&
            addr < slot.data_base + slot.data_capacity) {
            return &slot;
        }
    }
    return nullptr;
}

// vstream:hot
void
FrameBufferManager::storeBlock(Addr addr,
                               const std::vector<std::uint8_t> &bytes)
{
    BufferSlot *slot = slotContaining(addr);
    vs_assert(slot != nullptr,
              "block store outside any frame buffer: addr=", addr);
    const auto size = static_cast<std::uint32_t>(bytes.size());
    std::uint64_t *packed = slot->block_index.find(addr);
    if (packed != nullptr &&
        static_cast<std::uint32_t>(*packed) == size) {
        // Same-size overwrite: reuse the existing arena slab.
        std::memcpy(slot->arena.data() + (*packed >> 32), bytes.data(),
                    size);
        return;
    }
    const std::uint64_t off = slot->arena.size();
    slot->arena.insert(slot->arena.end(), bytes.begin(), bytes.end());
    const std::uint64_t entry = (off << 32) | size;
    if (packed != nullptr) {
        *packed = entry; // old slab becomes frame-local garbage
    } else {
        slot->block_index[addr] = entry;
    }
}

// vstream:hot
StoredBlock
FrameBufferManager::loadBlock(Addr addr) const
{
    const BufferSlot *slot = slotContaining(addr);
    if (slot == nullptr) {
        return {};
    }
    const std::uint64_t *packed = slot->block_index.find(addr);
    if (packed == nullptr) {
        return {};
    }
    return {slot->arena.data() + (*packed >> 32),
            static_cast<std::uint32_t>(*packed)};
}

std::uint32_t
FrameBufferManager::slotsInUse() const
{
    return static_cast<std::uint32_t>(slots_.stats().live);
}

std::uint64_t
FrameBufferManager::poolBytes() const
{
    return static_cast<std::uint64_t>(slots_.allocated()) *
           (meta_capacity_ + data_capacity_ + mach_dump_capacity_);
}

} // namespace vstream
