#include "core/mach_array.hh"

#include <algorithm>
#include <functional>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"
#include "video/pixel_kernels.hh"

namespace vstream
{

MachArray::MachArray(const MachConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    ring_.reserve(cfg_.num_machs);
    ring_.emplace_back(cfg_);
    // Pre-size the Fig. 9b match tracker so steady-state lookups
    // never rehash it (see MachConfig::match_track_reserve).
    match_counts_.reserve(cfg_.match_track_reserve);
    if (cfg_.co_mach) {
        co_mach_ = std::make_unique<CoMach>(cfg_);
    }
}

void
MachArray::beginFrame()
{
    if (ring_[cur_].validCount() > 0 || hist_count_ > 0) {
        ring_[cur_].freeze();
        if (ring_.size() < cfg_.num_machs) {
            // vstream:allow(no-hotpath-alloc) warmup-only growth: the
            // ring reaches num_machs caches within the first frames
            // and recycles in place forever after
            ring_.emplace_back(cfg_);
            cur_ = ring_.size() - 1;
        } else {
            cur_ = (cur_ + 1) % ring_.size();
            ring_[cur_].recycle();
        }
        const std::uint32_t cap = cfg_.num_machs - 1;
        hist_count_ = hist_count_ < cap ? hist_count_ + 1 : cap;
    }
    if (co_mach_) {
        co_mach_->beginFrame();
    }
}

MachLookupResult
MachArray::lookup(std::uint32_t digest, std::uint16_t aux,
                  const std::vector<std::uint8_t> &truth, Tick now)
{
    ++stats_.lookups;
    MachLookupResult result;

    // Bypassed (circuit breaker open): every block is treated as
    // unique so nothing stale in the caches can be matched.
    if (bypass_) {
        ++stats_.bypassed_lookups;
        ++stats_.misses;
        return result;
    }

    // Injected digest collision: pretend this block's digest (and
    // CRC16 aux) happens to equal that of an earlier, different
    // block, the worst case neither tag can distinguish.  The probe
    // still compares against the real bytes, so a resident collider
    // shows up as an undetected collision.
    bool forged = false;
    if (faults_ != nullptr && have_collider_ &&
        !blockEqual(collider_truth_, truth) &&
        faults_->shouldInject(FaultClass::kDigestCollision, now)) {
        digest = collider_digest_;
        aux = collider_aux_;
        forged = true;
    }

    // Current frame first (intra), then history newest-to-oldest.
    MachProbe probe = ring_[cur_].lookup(digest, aux, truth);
    if (probe.collision_detected) {
        result.collision_detected = true;
    }
    if (probe.hit) {
        result.hit = true;
        result.inter = false;
        result.frame_age = 0;
        result.ptr = probe.ptr;
        result.collision_undetected = probe.collision_undetected;
    } else {
        const std::size_t size = ring_.size();
        for (std::uint32_t age = 1; age <= hist_count_; ++age) {
            MachCache &mach = ring_[(cur_ + size - age) % size];
            probe = mach.lookup(digest, aux, truth);
            if (probe.collision_detected) {
                result.collision_detected = true;
            }
            if (probe.hit) {
                result.hit = true;
                result.inter = true;
                result.frame_age = age;
                result.ptr = probe.ptr;
                result.collision_undetected = probe.collision_undetected;
                break;
            }
        }
    }

    // CO-MACH covers the current frame's collided blocks.
    if (!result.hit && co_mach_) {
        probe = co_mach_->lookup(digest, aux, truth);
        if (probe.hit) {
            result.hit = true;
            result.inter = false;
            result.frame_age = 0;
            result.ptr = probe.ptr;
            result.collision_undetected = probe.collision_undetected;
        }
    }

    if (forged && result.hit && result.collision_undetected) {
        ++stats_.injected_collisions;
    }

    // Verify-on-hit byte compare: any hit whose stored bytes differ
    // from the candidate (i.e. an undetected collision, injected or
    // organic) is demoted to a miss and the caller falls back to the
    // full 48 B unique write.
    if (cfg_.verify_on_hit && result.hit &&
        result.collision_undetected) {
        ++stats_.false_hits;
        if (faults_ != nullptr && forged) {
            faults_->noteRecovered(FaultClass::kDigestCollision);
        }
        result.hit = false;
        result.inter = false;
        result.frame_age = 0;
        result.ptr = 0;
        result.collision_undetected = false;
    }

    if (result.hit) {
        if (result.inter) {
            ++stats_.inter_hits;
        } else {
            ++stats_.intra_hits;
        }
        ++match_counts_[digest];
    } else {
        ++stats_.misses;
    }
    if (result.collision_detected) {
        ++stats_.collisions_detected;
    }
    if (result.collision_undetected) {
        ++stats_.collisions_undetected;
    }
    return result;
}

void
MachArray::insertUnique(std::uint32_t digest, std::uint16_t aux, Addr ptr,
                        const std::vector<std::uint8_t> &truth,
                        bool collided)
{
    if (bypass_) {
        // The caller already paid for the unique write; recording it
        // would let a later (re-probed) lookup hit a block whose
        // digest path was never exercised.
        return;
    }
    ++stats_.inserts;
    if (write_observer_) {
        write_observer_(digest, aux, truth);
    }
    // Remember one inserted block as the collision-injection target;
    // refreshing it keeps the collider likely to still be resident.
    if (faults_ != nullptr) {
        have_collider_ = true;
        collider_digest_ = digest;
        collider_aux_ = aux;
        collider_truth_ = truth;
    }
    if (collided && co_mach_) {
        co_mach_->insert(digest, aux, ptr, truth);
        return;
    }
    ring_[cur_].insert(digest, aux, ptr, truth);
}

const MachCache &
MachArray::current() const
{
    return ring_[cur_];
}

const MachCache &
MachArray::historyAt(std::uint32_t age) const
{
    vs_assert(age >= 1 && age <= hist_count_,
              "MACH history age out of range: ", age);
    const std::size_t size = ring_.size();
    return ring_[(cur_ + size - age) % size];
}

std::uint64_t
MachArray::currentDumpBytes() const
{
    return ring_[cur_].dumpBytes();
}

std::vector<double>
MachArray::topMatchShares(std::size_t k) const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(match_counts_.size());
    std::uint64_t total = 0;
    match_counts_.forEach([&](std::uint32_t, std::uint64_t n) {
        counts.push_back(n);
        total += n;
    });
    std::sort(counts.begin(), counts.end(),
              std::greater<std::uint64_t>());

    std::vector<double> shares;
    for (std::size_t i = 0; i < k && i < counts.size(); ++i) {
        shares.push_back(total ? static_cast<double>(counts[i]) /
                                     static_cast<double>(total)
                               : 0.0);
    }
    return shares;
}

void
MachArray::regStats(StatsRegistry &r, const std::string &prefix) const
{
    r.addCallback(prefix + ".lookups", "digest lookups issued", [this] {
        return static_cast<double>(stats_.lookups);
    });
    r.addCallback(prefix + ".intraHits",
                  "hits in the current frame's MACH", [this] {
                      return static_cast<double>(stats_.intra_hits);
                  });
    r.addCallback(prefix + ".interHits", "hits in a frozen MACH",
                  [this] {
                      return static_cast<double>(stats_.inter_hits);
                  });
    r.addCallback(prefix + ".misses", "lookups missing every MACH",
                  [this] { return static_cast<double>(stats_.misses); });
    r.addCallback(prefix + ".hitRate", "hits / lookups",
                  [this] { return stats_.hitRate(); });
    r.addCallback(prefix + ".collisionsDetected",
                  "digest collisions caught by CO-MACH", [this] {
                      return static_cast<double>(
                          stats_.collisions_detected);
                  });
    r.addCallback(prefix + ".collisionsUndetected",
                  "digest collisions that corrupted a block", [this] {
                      return static_cast<double>(
                          stats_.collisions_undetected);
                  });
    r.addCallback(prefix + ".injectedCollisions",
                  "injected digest collisions that hit a wrong block",
                  [this] {
                      return static_cast<double>(
                          stats_.injected_collisions);
                  });
    r.addCallback(prefix + ".falseHits",
                  "hits demoted by the verify-on-hit byte compare",
                  [this] {
                      return static_cast<double>(stats_.false_hits);
                  });
    r.addCallback(prefix + ".bypassedLookups",
                  "lookups forced to miss while the array was bypassed",
                  [this] {
                      return static_cast<double>(
                          stats_.bypassed_lookups);
                  });
}

} // namespace vstream
