/**
 * @file
 * CO-MACH: the collision cache of Sec. 6.3.
 *
 * When two different blocks share a CRC32 digest, the auxiliary CRC16
 * in the MACH entry detects the collision; the colliding block is
 * then inserted here under its full 48-bit (CRC32||CRC16) tag instead
 * of the regular MACH.  CO-MACH only covers the frame currently being
 * decoded and is cleared at each frame boundary.
 */

#ifndef VSTREAM_CORE_CO_MACH_HH
#define VSTREAM_CORE_CO_MACH_HH

#include <memory>

#include "core/mach_cache.hh"

namespace vstream
{

/** Per-frame collision cache with 48-bit tags. */
class CoMach
{
  public:
    explicit CoMach(const MachConfig &cfg);

    /** Clear at a frame boundary. */
    void beginFrame();

    /** Probe with the full 48-bit tag. */
    MachProbe lookup(std::uint32_t digest, std::uint16_t aux,
                     const std::vector<std::uint8_t> &truth);

    /** Insert a collided block. */
    void insert(std::uint32_t digest, std::uint16_t aux, Addr ptr,
                const std::vector<std::uint8_t> &truth);

    /** Blocks inserted since construction (collision count proxy). */
    std::uint64_t insertCount() const { return inserts_; }

  private:
    // By value: a reference member dangles when built from a
    // temporary config (ASan stack-use-after-scope).
    MachConfig cfg_;
    std::unique_ptr<MachCache> cache_;
    std::uint64_t inserts_ = 0;
};

} // namespace vstream

#endif // VSTREAM_CORE_CO_MACH_HH
