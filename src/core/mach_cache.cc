#include "core/mach_cache.hh"

#include <cstring>

#include "sim/logging.hh"
#include "video/pixel_kernels.hh"

namespace vstream
{

MachCache::MachCache(const MachConfig &cfg, std::uint32_t entries,
                     bool full_tags)
    : cfg_(cfg),
      sets_((entries ? entries : cfg.entries) / cfg.ways),
      ways_(cfg.ways), full_tags_(full_tags),
      entries_(static_cast<std::size_t>(sets_) * ways_),
      repl_(ReplPolicy::kLru, sets_, ways_)
{
    vs_assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0,
              "MACH set count must be a power of two");
}

MachEntry &
MachCache::entry(std::uint32_t set, std::uint32_t way)
{
    return entries_[static_cast<std::size_t>(set) * ways_ + way];
}

const MachEntry &
MachCache::entry(std::uint32_t set, std::uint32_t way) const
{
    return entries_[static_cast<std::size_t>(set) * ways_ + way];
}

std::uint32_t
MachCache::setOf(std::uint32_t digest) const
{
    // The paper indexes with the low digest bits (all 32 are
    // uniformly distributed).
    return digest & (sets_ - 1);
}

std::uint8_t *
MachCache::truthAt(std::uint32_t set, std::uint32_t way)
{
    return truth_arena_.data() +
           (static_cast<std::size_t>(set) * ways_ + way) *
               truth_stride_;
}

const std::uint8_t *
MachCache::truthAt(std::uint32_t set, std::uint32_t way) const
{
    return truth_arena_.data() +
           (static_cast<std::size_t>(set) * ways_ + way) *
               truth_stride_;
}

MachProbe
MachCache::lookup(std::uint32_t digest, std::uint16_t aux,
                  const std::vector<std::uint8_t> &truth)
{
    MachProbe probe;
    const std::uint32_t set = setOf(digest);

    for (std::uint32_t w = 0; w < ways_; ++w) {
        MachEntry &e = entry(set, w);
        if (!e.valid || e.digest != digest) {
            continue;
        }
        if (full_tags_ && e.aux != aux) {
            continue;
        }

        if (cfg_.co_mach && !full_tags_ && e.aux != aux) {
            // Primary digest collided; the CRC16 check caught it.
            probe.collision_detected = true;
            continue;
        }

        probe.hit = true;
        probe.ptr = e.ptr;
        if (truth.size() != truth_stride_ ||
            !blockEqual(truthAt(set, w), truth.data(),
                        truth.size())) {
            // The (possibly 48-bit) tag matched but the content
            // differs: an undetected collision.
            probe.collision_undetected = true;
        }
        repl_.touch(set, w);
        return probe;
    }
    return probe;
}

void
MachCache::insert(std::uint32_t digest, std::uint16_t aux, Addr ptr,
                  const std::vector<std::uint8_t> &truth)
{
    vs_assert(!frozen_, "insert into a frozen MACH");

    if (truth_arena_.empty() && !truth.empty()) {
        truth_stride_ = static_cast<std::uint32_t>(truth.size());
        truth_arena_.assign(entries_.size() *
                                static_cast<std::size_t>(truth_stride_),
                            0);
    }
    vs_assert(truth.size() == truth_stride_,
              "MACH truth size changed between inserts");

    const std::uint32_t set = setOf(digest);

    std::uint32_t way = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!entry(set, w).valid) {
            way = w;
            break;
        }
    }
    if (way == ways_) {
        way = repl_.victim(set);
    }

    MachEntry &e = entry(set, way);
    e.valid = true;
    e.digest = digest;
    e.aux = aux;
    e.ptr = ptr;
    if (!truth.empty()) {
        std::memcpy(truthAt(set, way), truth.data(), truth.size());
    }
    repl_.fill(set, way);
}

void
MachCache::recycle()
{
    for (MachEntry &e : entries_) {
        e.valid = false;
    }
    frozen_ = false;
    repl_.reset();
}

std::uint32_t
MachCache::validCount() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries_) {
        if (e.valid) {
            ++n;
        }
    }
    return n;
}

std::uint64_t
MachCache::dumpBytes() const
{
    return static_cast<std::uint64_t>(validCount()) *
           (cfg_.digest_bytes + cfg_.pointer_bytes);
}

std::vector<const MachEntry *>
MachCache::validEntries() const
{
    std::vector<const MachEntry *> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        if (e.valid) {
            out.push_back(&e);
        }
    }
    return out;
}

} // namespace vstream
