/**
 * @file
 * Decoded-macroblock writeback paths.
 *
 * The decoder hands every decoded mab to a WritebackStage, which owns
 * how the frame reaches memory:
 *  - LinearWriteback:  the baseline streaming store (48 B per mab,
 *    write-combined into 64 B transactions, layout Fig. 9c(i));
 *  - MachWriteback:    the paper's content cache; unique blocks are
 *    appended to a compacted data region while matches store only a
 *    pointer or digest plus (in gab mode) the 3 B base
 *    (layouts Fig. 9c(ii)/(iii)), with CO-MACH and DCC options.
 */

#ifndef VSTREAM_CORE_WRITEBACK_STAGE_HH
#define VSTREAM_CORE_WRITEBACK_STAGE_HH

#include <cstdint>
#include <vector>

#include "core/coalescing_buffer.hh"
#include "core/frame_buffer_manager.hh"
#include "core/framebuffer_layout.hh"
#include "core/mach_array.hh"
#include "video/frame.hh"

namespace vstream
{

/** Cumulative writeback statistics across all frames. */
struct WritebackTotals
{
    std::uint64_t mabs = 0;
    std::uint64_t unique_blocks = 0;
    std::uint64_t intra_matches = 0;
    std::uint64_t inter_matches = 0;
    std::uint64_t data_bytes = 0;
    std::uint64_t meta_bytes = 0;
    std::uint64_t dump_bytes = 0;
    std::uint64_t dram_write_requests = 0;
    /** Bytes DCC removed from unique-block writes. */
    std::uint64_t dcc_saved_bytes = 0;

    /** Total bytes this stage put into memory. */
    std::uint64_t totalBytes() const
    {
        return data_bytes + meta_bytes + dump_bytes;
    }

    /** Bytes the baseline layout would have written. */
    std::uint64_t
    baselineBytes(std::uint32_t mab_bytes) const
    {
        return mabs * mab_bytes;
    }

    /** Fractional saving vs the baseline (positive = fewer bytes). */
    double savings(std::uint32_t mab_bytes) const;
};

/** Abstract writeback path. */
class WritebackStage
{
  public:
    virtual ~WritebackStage() = default;

    /**
     * Begin writing @p frame into @p slot.
     *
     * @param layout caller-owned (typically pooled) storage the stage
     *               reinitialises and fills in place; it must outlive
     *               the matching finishFrame().
     */
    virtual void beginFrame(const Frame &frame, BufferSlot &slot,
                            Tick now, FrameLayout &layout) = 0;

    /** Write mab @p idx of the current frame (posted; no stall). */
    virtual void writeMab(const Macroblock &mab, std::uint32_t idx,
                          Tick now) = 0;

    /** Finish the frame, finalising the layout given to beginFrame(). */
    virtual void finishFrame(Tick now) = 0;

    const WritebackTotals &totals() const { return totals_; }

  protected:
    WritebackTotals totals_;
};

/** Baseline layout (i): every mab streamed to its linear address. */
class LinearWriteback : public WritebackStage
{
  public:
    LinearWriteback(MemorySystem &mem, FrameBufferManager &fbm);

    void beginFrame(const Frame &frame, BufferSlot &slot, Tick now,
                    FrameLayout &layout) override;
    void writeMab(const Macroblock &mab, std::uint32_t idx,
                  Tick now) override;
    void finishFrame(Tick now) override;

  private:
    MemorySystem &mem_;
    FrameBufferManager &fbm_;
    CoalescingBuffer data_buf_;
    FrameLayout *layout_ = nullptr;
    BufferSlot *slot_ = nullptr;
    std::uint32_t mab_bytes_ = 0;
    Tick last_tick_ = 0;
};

/** MACH-compacted layouts (ii)/(iii). */
class MachWriteback : public WritebackStage
{
  public:
    /**
     * @param layout_kind kPointer (layout ii) or kPointerDigest
     *                    (layout iii, required for the MACH buffer)
     * @param use_dcc     additionally DCC-compress unique blocks
     */
    MachWriteback(MemorySystem &mem, FrameBufferManager &fbm,
                  MachArray &machs, LayoutKind layout_kind,
                  bool use_dcc = false);

    void beginFrame(const Frame &frame, BufferSlot &slot, Tick now,
                    FrameLayout &layout) override;
    void writeMab(const Macroblock &mab, std::uint32_t idx,
                  Tick now) override;
    void finishFrame(Tick now) override;

    MachArray &machs() { return machs_; }

  private:
    MemorySystem &mem_;
    FrameBufferManager &fbm_;
    MachArray &machs_;
    LayoutKind layout_kind_;
    bool use_dcc_;

    CoalescingBuffer data_buf_;
    CoalescingBuffer meta_buf_;
    CoalescingBuffer base_buf_;

    FrameLayout *layout_ = nullptr;
    BufferSlot *slot_ = nullptr;
    std::uint32_t mab_bytes_ = 0;
    std::uint64_t frame_data_bytes_ = 0;
    std::uint64_t frame_meta_bytes_ = 0;
    Tick last_tick_ = 0;

    /**
     * Whole-frame precompute, filled by beginFrame() and consumed by
     * writeMab(idx): the gab transform of every mab plus all primary
     * (and, with CO-MACH, auxiliary) digests from one batched
     * dispatch call.  All storage is reused across frames.
     */
    const Frame *frame_ = nullptr;
    std::vector<Macroblock> gabs_;
    std::vector<const std::uint8_t *> block_ptrs_;
    std::vector<std::uint32_t> digests_;
    std::vector<std::uint16_t> auxes_;
};

} // namespace vstream

#endif // VSTREAM_CORE_WRITEBACK_STAGE_HH
