#include "core/video_pipeline.hh"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/surface_pool.hh"
#include "decoder/video_decoder.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/stats_registry.hh"
#include "sim/trace_event.hh"
#include "video/arrival_model.hh"
#include "video/synthetic_video.hh"

namespace vstream
{

double
PipelineResult::s3Residency() const
{
    return span ? static_cast<double>(vd_time.s3) /
                      static_cast<double>(span)
                : 0.0;
}

double
PipelineResult::dropRate() const
{
    return frames ? static_cast<double>(drops) /
                        static_cast<double>(frames)
                  : 0.0;
}

VideoPipeline::VideoPipeline(PipelineConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.finalize();
}

VideoPipeline::~VideoPipeline() = default;

/**
 * Fixed-capacity FIFO of frame indices backed by a vector ring.  The
 * live-slot window is bounded by pool_cap, so unlike a deque it never
 * churns allocator nodes in steady state.
 */
struct LiveSlotRing
{
    std::vector<std::uint64_t> buf;
    std::size_t head = 0;
    std::size_t count = 0;

    void init(std::size_t cap) { buf.assign(cap, 0); }
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::uint64_t front() const { return buf[head]; }
    std::uint64_t back() const
    {
        return buf[(head + count - 1) % buf.size()];
    }
    std::uint64_t operator[](std::size_t i) const
    {
        return buf[(head + i) % buf.size()];
    }

    void
    push_back(std::uint64_t v)
    {
        vs_assert(count < buf.size(), "live-slot ring overflow");
        buf[(head + count) % buf.size()] = v;
        ++count;
    }

    void
    pop_front()
    {
        vs_assert(count > 0, "pop from empty live-slot ring");
        head = (head + 1) % buf.size();
        --count;
    }
};

/** Mutable state of one playback simulation. */
struct Playback
{
    const PipelineConfig &cfg;
    EventQueue queue;
    MemorySystem mem;
    FrameBufferManager fbm;
    std::unique_ptr<MachArray> machs;
    std::unique_ptr<WritebackStage> wb;
    VideoDecoder vd;
    DisplayController dc;
    SleepGovernor governor;
    SyntheticVideo video;

    // Robustness plumbing (both null in a pristine run: the fault
    // paths stay untaken and results are bit-identical to the seed).
    std::unique_ptr<FaultInjector> faults;
    std::unique_ptr<ArrivalModel> arrivals;

    // Static schedule parameters.
    std::uint32_t frames;
    Tick period;
    Tick t0;
    std::uint32_t chunk_frames;
    std::uint32_t window;
    std::uint32_t pool_cap;
    bool baseline_pacing;

    // Decode bookkeeping.  Layouts are borrowed from a recycled pool
    // sized by the live-slot window, so steady-state decode performs
    // no layout allocation; a recycled frame's pointer goes null.
    std::vector<Tick> finishes;
    SurfacePool<FrameLayout> layout_pool{"pipeline.layouts"};
    std::vector<FrameLayout *> layouts;
    /** Recycled scratch the generator writes each frame into, so
     * steady-state decode allocates no frame storage. */
    Frame frame_scratch;
    std::vector<BufferSlot *> slot_of;
    LiveSlotRing live_slots;
    Tick decoder_free = 0;
    std::uint32_t decoded = 0;
    // Vsync-loop state (lives here so the stepwise interface can
    // suspend/resume the playback between vsyncs).
    std::uint32_t next_decode = 0;  // next frame to decode
    std::int64_t last_shown = -1;   // last frame on screen
    Tick prev_free = 0;             // decoder idle-window start
    std::uint32_t prev_batch_first = 0;
    /** EWMA of decode busy time normalized to the low P-state, for
     * the history-based DVFS predictor. */
    double ewma_low_busy_s = 0.0;

    // Observability: per-frame series for the stats registry, and
    // the optional Chrome-trace sink with its tracks.
    stats::SampleSeries frame_exec_ms;
    stats::SampleSeries frame_slack_ms;
    TraceEventSink *trace;
    TraceEventSink::TrackId tr_vd = 0;
    TraceEventSink::TrackId tr_power = 0;
    TraceEventSink::TrackId tr_dc = 0;
    TraceEventSink::TrackId tr_dram = 0;

    PipelineResult result;

    explicit Playback(const PipelineConfig &c)
        : cfg(c), mem("mem", &queue, c.dram),
          fbm(mem, c.profile.mabsPerFrame(),
              c.profile.mab_dim * c.profile.mab_dim * kBytesPerPixel,
              c.scheme.mach
                  ? static_cast<std::uint64_t>(c.mach.entries) *
                        (c.mach.digest_bytes + c.mach.pointer_bytes)
                  : 0),
          vd("vd", &queue, mem, c.decoder, c.profile),
          dc("dc", &queue, mem, fbm, c.display),
          governor(c.decoder.power), video(c.profile),
          frames(c.profile.frame_count),
          period(c.profile.framePeriodTicks()),
          t0(static_cast<Tick>(c.startup_vsyncs) *
             c.profile.framePeriodTicks()),
          chunk_frames(std::max<std::uint32_t>(
              1, static_cast<std::uint32_t>(
                     (c.buffer_interval * c.profile.fps) /
                     sim_clock::s))),
          window(c.scheme.mach ? c.mach.num_machs - 1 : 0),
          pool_cap(std::max<std::uint32_t>(3, c.scheme.batch + 2) +
                   (c.scheme.mach ? c.mach.num_machs - 1 : 0)),
          baseline_pacing(c.scheme.batch == 1)
    {
        frame_exec_ms = stats::SampleSeries(
            "", "per-frame decode busy time, ms");
        frame_slack_ms = stats::SampleSeries(
            "", "per-frame S0 slack before the deadline, ms");
        trace = c.trace;
        if (trace != nullptr) {
            tr_vd = trace->track("vd.decode");
            tr_power = trace->track("vd.power");
            tr_dc = trace->track("dc.scanout");
            tr_dram = trace->track("dram");
            queue.setTraceSink(trace);
        }
        if (c.scheme.mach) {
            machs = std::make_unique<MachArray>(c.mach);
            wb = std::make_unique<MachWriteback>(
                mem, fbm, *machs, c.scheme.layout, c.scheme.dcc);
        } else {
            wb = std::make_unique<LinearWriteback>(mem, fbm);
        }
        vd.setFrequency(c.scheme.freq);

        if (c.faults.enabled()) {
            faults = std::make_unique<FaultInjector>("faults", &queue,
                                                     c.faults);
            mem.setFaultInjector(faults.get());
            if (machs) {
                machs->setFaultInjector(faults.get());
            }
        }
        if (c.arrival.enabled) {
            // The pipeline's preroll is the single source of truth.
            ArrivalConfig acfg = c.arrival;
            acfg.preroll_frames = c.preroll_frames;
            arrivals = std::make_unique<ArrivalModel>(c.profile, acfg,
                                                      faults.get());
        }

        finishes.assign(frames, maxTick);
        slot_of.assign(frames, nullptr);
        layouts.reserve(frames);
        live_slots.init(pool_cap);
        frame_exec_ms.reserve(frames);
        frame_slack_ms.reserve(frames);
        result.frame_records.resize(frames);
        result.video_key = c.profile.key;
        result.scheme = c.scheme.scheme;
        result.frames = frames;
    }

    Tick vsync(std::uint64_t v) const { return t0 + v * period; }

    /** Network-arrival tick of frame @p i. */
    Tick
    arrival(std::uint32_t i) const
    {
        if (arrivals) {
            return arrivals->arrivalTick(i);
        }
        if (i < cfg.preroll_frames) {
            return 0;
        }
        const std::uint64_t chunk =
            (i - cfg.preroll_frames) / chunk_frames;
        return (chunk + 1) * cfg.buffer_interval;
    }

    /** At a decoder wake-up for frame @p i, record whether fewer
     * than a full batch of frames had been delivered (the shrunk
     * batch the stalled network forces). */
    void
    noteBatchShrink(std::uint32_t i, Tick start)
    {
        if (!arrivals || cfg.scheme.batch <= 1) {
            return;
        }
        const std::uint32_t j_last =
            std::min(i + cfg.scheme.batch, frames) - 1;
        if (arrival(j_last) > start) {
            ++result.batch_shrinks;
        }
    }

    /** Tick at which frame @p j's buffer may be recycled. */
    Tick
    releaseTick(std::uint64_t j) const
    {
        return vsync(j + 2 + window);
    }

    /** Earliest tick a buffer slot is free for frame @p i. */
    Tick
    slotFreeTick() const
    {
        if (live_slots.size() < pool_cap) {
            return 0;
        }
        return releaseTick(live_slots.front());
    }

    /** Earliest tick a whole batch's worth of slots is free: the
     * wake-up hysteresis that lets the decoder sleep through an
     * entire batch window instead of trickling one frame per vsync. */
    Tick
    batchSlotFreeTick() const
    {
        const std::uint64_t need =
            live_slots.size() + cfg.scheme.batch;
        if (need <= pool_cap) {
            return 0;
        }
        const std::uint64_t kth = need - pool_cap - 1;
        if (kth >= live_slots.size()) {
            return releaseTick(live_slots.back());
        }
        return releaseTick(live_slots[kth]);
    }

    /** Earliest allowed start of decoding frame @p i. */
    Tick
    nextStart(std::uint32_t i) const
    {
        const Tick earliest =
            std::max({decoder_free, arrival(i), slotFreeTick()});
        if (baseline_pacing) {
            // One frame per period, woken by the application.
            const Tick slot_time =
                vsync(i) >= period ? vsync(i) - period : 0;
            return std::max(earliest, slot_time);
        }
        // Batched race-to-sleep: while work is buffered (and a frame
        // buffer is free), keep draining it back-to-back; the paper's
        // scheme is explicitly adaptive to however many frames the
        // network has delivered (Sec. 3.3).
        if (arrival(i) <= decoder_free &&
            slotFreeTick() <= decoder_free) {
            return earliest;
        }
        // Buffer empty or pool blocked: sleep until a full batch of
        // frames has arrived AND a full batch of buffers is free -
        // but wake no later than one period before the baseline
        // would have started this frame, so the first frame after a
        // sleep still has a cushion against a heavy tail.
        const std::uint32_t j_last =
            std::min(i + cfg.scheme.batch, frames) - 1;
        const Tick prefer =
            std::max(arrival(j_last), batchSlotFreeTick());
        const Tick guard =
            vsync(i) >= 2 * period ? vsync(i) - 2 * period : 0;
        return std::max(earliest, std::min(prefer, guard));
    }

    /** Spend the idle window [from, to) per the sleep governor and
     * attribute it to frames [first, last]. */
    void
    spendIdle(Tick from, Tick to, std::uint32_t first, std::uint32_t last)
    {
        if (to <= from) {
            return;
        }
        const Tick window_ticks = to - from;
        const SleepDecision d =
            governor.decide(window_ticks, vd.frequency());

        if (trace != nullptr) {
            // One lane shows where the idle window went: the
            // transition overhead at the front, then the dwell in
            // whichever state the governor picked.
            if (d.state == PowerState::kSleepS1 ||
                d.state == PowerState::kSleepS3) {
                const char *state =
                    d.state == PowerState::kSleepS1 ? "S1" : "S3";
                if (d.transition_time > 0) {
                    trace->complete(tr_power, "transition", from,
                                    d.transition_time);
                }
                trace->complete(tr_power, state,
                                from + d.transition_time, d.sleep_time);
            } else {
                trace->complete(tr_power, "slack", from, window_ticks);
            }
        }

        result.vd_time.transition += d.transition_time;
        result.energy.transition += d.transition_energy_j;
        const double dwell_energy = d.energy_j - d.transition_energy_j;
        if (d.state == PowerState::kSleepS1) {
            result.vd_time.s1 += d.sleep_time;
            result.energy.sleep += dwell_energy;
            ++result.sleep_events;
        } else if (d.state == PowerState::kSleepS3) {
            result.vd_time.s3 += d.sleep_time;
            result.energy.sleep += dwell_energy;
            ++result.sleep_events;
        } else {
            result.vd_time.short_slack += window_ticks;
            result.energy.short_slack += d.energy_j;
        }

        if (last < first || last >= frames) {
            return;
        }
        const auto n = static_cast<double>(last - first + 1);
        for (std::uint32_t f = first; f <= last; ++f) {
            FrameStateRecord &rec = result.frame_records[f];
            rec.transition +=
                static_cast<Tick>(d.transition_time / n);
            rec.e_trans += d.transition_energy_j / n;
            if (d.state == PowerState::kSleepS1) {
                rec.s1 += static_cast<Tick>(d.sleep_time / n);
                rec.e_sleep += dwell_energy / n;
            } else if (d.state == PowerState::kSleepS3) {
                rec.s3 += static_cast<Tick>(d.sleep_time / n);
                rec.e_sleep += dwell_energy / n;
            } else {
                rec.slack += static_cast<Tick>(window_ticks / n);
                rec.e_slack += d.energy_j / n;
            }
        }
    }

    /** Return a recycled frame's layout to the pool (bounds host
     * memory on long runs; the frame can no longer be shown). */
    void
    dropLayoutPayload(std::uint64_t j)
    {
        if (j < layouts.size() && layouts[j] != nullptr) {
            layout_pool.release(*layouts[j]);
            layouts[j] = nullptr;
        }
    }

    /** Decode frame @p i starting no earlier than @p start. */
    void
    decodeOne(std::uint32_t i, Tick start)
    {
        // Recycle every slot whose hold time has expired; block on
        // the pool if it is still full.
        while (!live_slots.empty() &&
               releaseTick(live_slots.front()) <= start) {
            fbm.release(live_slots.front());
            dropLayoutPayload(live_slots.front());
            live_slots.pop_front();
        }
        while (live_slots.size() >= pool_cap) {
            start = std::max(start, releaseTick(live_slots.front()));
            fbm.release(live_slots.front());
            dropLayoutPayload(live_slots.front());
            live_slots.pop_front();
        }

        video.nextFrameInto(frame_scratch);
        const Frame &frame = frame_scratch;
        BufferSlot &slot = fbm.acquire(i);
        slot_of[i] = &slot;
        live_slots.push_back(i);

        const BufferSlot *prev =
            i > 0 ? slot_of[i - 1] : nullptr;

        // History-based DVFS: drop to the low P-state when the EWMA
        // of recent decode times predicts comfortable slack.
        if (cfg.scheme.dvfs_slack) {
            const double period_s = ticksToSeconds(period);
            const bool safe =
                ewma_low_busy_s > 0.0 &&
                ewma_low_busy_s <= cfg.scheme.dvfs_margin * period_s;
            vd.setFrequency(safe ? VdFrequency::kLow
                                 : VdFrequency::kHigh);
        }

        FrameLayout &layout = layout_pool.acquire();
        const FrameDecodeResult r =
            vd.decodeFrame(frame, *wb, slot, prev, start, layout);
        wb->finishFrame(r.finish);
        layouts.push_back(&layout);

        if (cfg.scheme.dvfs_slack) {
            const double low_equiv_s =
                ticksToSeconds(r.busy()) *
                (cfg.decoder.power.frequencyHz(vd.frequency()) /
                 cfg.decoder.power.freq_low_hz);
            ewma_low_busy_s = ewma_low_busy_s == 0.0
                                  ? low_equiv_s
                                  : 0.7 * ewma_low_busy_s +
                                        0.3 * low_equiv_s;
        }

        finishes[i] = r.finish;
        decoder_free = r.finish;
        ++decoded;

        FrameStateRecord &rec = result.frame_records[i];
        rec.start = r.start;
        rec.finish = r.finish;
        rec.deadline = vsync(i);
        rec.exec = r.busy();
        rec.e_exec = cfg.decoder.power.activePower(vd.frequency()) *
                     ticksToSeconds(r.busy());
        result.vd_time.execution += r.busy();
        result.energy.vd_processing += rec.e_exec;

        frame_exec_ms.sample(ticksToMs(r.busy()));
        if (rec.deadline > rec.finish) {
            frame_slack_ms.sample(ticksToMs(rec.deadline - rec.finish));
        } else {
            frame_slack_ms.sample(0.0);
        }
        if (trace != nullptr) {
            trace->complete(
                tr_vd, "decode", r.start, r.busy(),
                {{"frame", static_cast<double>(i)},
                 {"stall_ms", ticksToMs(r.mem_stall)}});
        }
    }

    /** Cumulative DRAM counter samples on the dram track. */
    void
    traceDramCounters(Tick now)
    {
        if (trace == nullptr) {
            return;
        }
        const DramActivityCounts c = mem.energy().totalCounts();
        trace->counter(tr_dram, "dram.bytes", now,
                       static_cast<double>(c.bytes_read +
                                           c.bytes_written));
        trace->counter(tr_dram, "dram.activations", now,
                       static_cast<double>(c.activations));
    }

    /** Zero every counter regStats() registers, recursing into the
     * sub-objects.  Architectural state (buffers, MACH contents,
     * schedule position) is untouched. */
    void
    resetStats()
    {
        vd.resetStats();
        dc.resetStats();
        mem.resetStats();
        if (machs) {
            machs->resetStats();
        }
        if (faults) {
            faults->resetStats();
        }
        frame_exec_ms.reset();
        frame_slack_ms.reset();
        result = PipelineResult{};
    }

    /** Register every stat of this playback into @p r. */
    void
    regStats(StatsRegistry &r)
    {
        vd.regStats(r);
        dc.regStats(r);
        mem.regStats(r);
        if (machs) {
            machs->regStats(r, "vd.mach");
        }
        r.add("pipeline.frameExecMs", frame_exec_ms);
        r.add("pipeline.frameSlackMs", frame_slack_ms);
        r.addCallback("pipeline.frames", "frames in the video", [this] {
            return static_cast<double>(result.frames);
        });
        r.addCallback("pipeline.drops", "frames that missed a vsync",
                      [this] {
                          return static_cast<double>(result.drops);
                      });
        r.addCallback("pipeline.peakBuffers",
                      "high-water mark of live frame buffers", [this] {
                          return static_cast<double>(
                              result.peak_buffers);
                      });
        r.addCallback("pipeline.sleepEvents",
                      "idle windows spent in S1/S3", [this] {
                          return static_cast<double>(
                              result.sleep_events);
                      });
        r.addCallback("pipeline.underruns",
                      "vsyncs whose frame had not arrived", [this] {
                          return static_cast<double>(
                              result.underruns);
                      });
        r.addCallback("pipeline.batchShrinks",
                      "decoder wake-ups with a partial batch", [this] {
                          return static_cast<double>(
                              result.batch_shrinks);
                      });
        if (faults) {
            faults->regStats(r);
        }
        r.addCallback("pipeline.spanSeconds", "simulated playback span",
                      [this] { return ticksToSeconds(result.span); });
        r.addCallback("pipeline.energyJ", "total system energy",
                      [this] { return result.energy.total(); });
        r.addCallback("pipeline.energy.dcJ", "display-controller energy",
                      [this] { return result.energy.dc; });
        r.addCallback("pipeline.energy.memBackgroundJ",
                      "DRAM background energy",
                      [this] { return result.energy.mem_background; });
        r.addCallback("pipeline.energy.vdProcessingJ",
                      "decoder active (S0 busy) energy",
                      [this] { return result.energy.vd_processing; });
        r.addCallback("pipeline.energy.sleepJ", "S1/S3 dwell energy",
                      [this] { return result.energy.sleep; });
        r.addCallback("pipeline.energy.shortSlackJ",
                      "S0 idle (slack too short to sleep) energy",
                      [this] { return result.energy.short_slack; });
        r.addCallback("pipeline.energy.memBurstJ", "DRAM burst energy",
                      [this] { return result.energy.mem_burst; });
        r.addCallback("pipeline.energy.memActPreJ",
                      "DRAM activate/precharge energy",
                      [this] { return result.energy.mem_act_pre; });
        r.addCallback("pipeline.energy.transitionJ",
                      "power-state transition energy",
                      [this] { return result.energy.transition; });
        r.addCallback("pipeline.energy.machOverheadJ",
                      "MACH/display-cache/buffer static overhead",
                      [this] { return result.energy.mach_overhead; });
    }
};

void
VideoPipeline::start()
{
    vs_assert(!ran_, "a VideoPipeline may only simulate once");
    ran_ = true;
    p_ = std::make_unique<Playback>(cfg_);
}

bool
VideoPipeline::stepDone() const
{
    vs_assert(p_ != nullptr, "start() must precede stepDone()");
    return next_vsync_ >= p_->frames;
}

Tick
VideoPipeline::nextVsyncTick() const
{
    vs_assert(p_ != nullptr && next_vsync_ < p_->frames,
              "nextVsyncTick() needs a pending vsync");
    return p_->vsync(next_vsync_);
}

void
VideoPipeline::stepVsync()
{
    vs_assert(p_ != nullptr && !finished_,
              "stepVsync() needs a started, unfinished playback");
    Playback &p = *p_;
    const std::uint32_t n = p.frames;
    const std::uint32_t v = next_vsync_;
    vs_assert(v < n, "stepVsync() past the last vsync");
    ++next_vsync_;

    // Decode everything that starts at or before this vsync.
    while (p.next_decode < n) {
        const Tick start = p.nextStart(p.next_decode);
        if (start > p.vsync(v)) {
            break;
        }

        // A sleep gap ends the previous "batch" (the run of
        // back-to-back decodes); its idle window is attributed
        // across the frames of that run.
        if (p.next_decode > 0 && start > p.prev_free) {
            p.spendIdle(p.prev_free, start, p.prev_batch_first,
                        p.next_decode - 1);
            p.prev_batch_first = p.next_decode;
            p.noteBatchShrink(p.next_decode, start);
        }
        p.decodeOne(p.next_decode, start);
        p.prev_free = p.decoder_free;
        ++p.next_decode;
    }

    // Scan-out at this vsync.
    const Tick now = p.vsync(v);
    std::int64_t shown = p.last_shown;
    if (v < p.decoded && p.finishes[v] <= now) {
        shown = v;
    }

    if (shown != static_cast<std::int64_t>(v)) {
        ++p.result.drops;
        p.result.frame_records[v].dropped = true;
        if (p.trace != nullptr) {
            p.trace->instant(p.tr_dc, "drop", now,
                             {{"frame", static_cast<double>(v)}});
        }
        // Streaming-buffer underrun: this vsync's frame had not
        // even been delivered.  The pipeline degrades by showing
        // the previous frame again (accounted at the DC) rather
        // than panicking.
        if (p.arrivals && p.arrival(v) > now) {
            ++p.result.underruns;
            if (shown >= 0) {
                p.dc.noteUnderrunRepeat();
            }
        }
    }
    if (shown >= 0) {
        // Re-rendering a frame older than the retention window
        // would read a recycled buffer; show it without traffic.
        const bool stale =
            shown + 2 + static_cast<std::int64_t>(p.window) <=
            static_cast<std::int64_t>(v);
        if (!stale) {
            FrameLayout *shown_layout =
                p.layouts[static_cast<std::size_t>(shown)];
            vs_assert(shown_layout != nullptr,
                      "scan-out of a recycled layout");
            const ScanStats scan = p.dc.scanOut(
                *shown_layout, now,
                shown != static_cast<std::int64_t>(v));
            if (cfg_.verify_display && !scan.verified) {
                p.result.all_verified = false;
            }
            if (p.trace != nullptr) {
                p.trace->complete(
                    p.tr_dc, "scanout", scan.start,
                    scan.finish - scan.start,
                    {{"frame", static_cast<double>(shown)},
                     {"bytes", static_cast<double>(
                                   scan.bytes_read)}});
            }
        }
    }
    p.traceDramCounters(now);
    p.last_shown = shown;
}

bool
VideoPipeline::hasMach() const
{
    return p_ != nullptr ? p_->machs != nullptr : cfg_.scheme.mach;
}

void
VideoPipeline::setMachBypass(bool on)
{
    vs_assert(p_ != nullptr, "start() must precede setMachBypass()");
    if (p_->machs) {
        p_->machs->setBypass(on);
    }
}

void
VideoPipeline::setMachWriteObserver(MachWriteObserver obs)
{
    vs_assert(p_ != nullptr,
              "start() must precede setMachWriteObserver()");
    if (p_->machs) {
        p_->machs->setWriteObserver(std::move(obs));
    }
}

const PipelineResult &
VideoPipeline::liveResult() const
{
    vs_assert(p_ != nullptr, "start() must precede liveResult()");
    return p_->result;
}

MachStats
VideoPipeline::liveMachStats() const
{
    vs_assert(p_ != nullptr, "start() must precede liveMachStats()");
    return p_->machs ? p_->machs->stats() : MachStats{};
}

std::uint64_t
VideoPipeline::liveDramAbandoned() const
{
    vs_assert(p_ != nullptr,
              "start() must precede liveDramAbandoned()");
    return p_->mem.controller().abandonedCount();
}

std::uint64_t
VideoPipeline::liveDramBytes() const
{
    vs_assert(p_ != nullptr, "start() must precede liveDramBytes()");
    const DramActivityCounts c = p_->mem.energy().totalCounts();
    return c.bytes_read + c.bytes_written;
}

PipelineResult
VideoPipeline::run()
{
    start();
    while (!stepDone()) {
        stepVsync();
    }
    return finish();
}

PipelineResult
VideoPipeline::finish()
{
    vs_assert(p_ != nullptr && !finished_,
              "finish() needs a started, unfinished playback");
    finished_ = true;
    Playback &p = *p_;
    const std::uint32_t n = p.frames;

    // Close the decoder's final idle window.  A session terminated
    // early (quarantine/eviction) closes at its last processed vsync
    // rather than the nominal end of playback; stepping every vsync
    // makes this identical to the classic one-shot run().
    const std::uint32_t done = next_vsync_ > 0 ? next_vsync_ : 1;
    const Tick span = p.vsync(done - 1) + p.period;
    if (p.decoder_free < span) {
        p.spendIdle(std::max(p.prev_free, p.vsync(0)), span,
                    p.prev_batch_first, done - 1);
    }
    // Idle time before the very first decode (startup).
    if (n > 0 && !p.result.frame_records.empty()) {
        const Tick first_start = p.result.frame_records[0].start;
        if (first_start > 0) {
            p.spendIdle(0, first_start, 1, 0); // totals only
        }
    }

    // ---- assemble the result -----------------------------------------
    p.mem.flushWrites(span);
    PipelineResult &r = p.result;
    r.span = span;
    const double span_s = ticksToSeconds(span);
    const double scale = cfg_.trafficEnergyScale();

    r.energy.mem_act_pre =
        p.mem.energy().actPreEnergyTotal() * scale;
    r.energy.mem_burst = p.mem.energy().burstEnergyTotal() * scale;
    r.energy.mem_background = cfg_.dram.background_watts * span_s;
    r.energy.dc = cfg_.display.power_w * span_s;

    double overhead_w = 0.0;
    if (cfg_.scheme.mach) {
        overhead_w += cfg_.mach.mach_power_w;
    }
    if (cfg_.scheme.display_cache) {
        overhead_w += cfg_.mach.display_cache_power_w;
    }
    if (cfg_.scheme.mach_buffer) {
        overhead_w += cfg_.mach.mach_buffer_power_w;
    }
    if (cfg_.scheme.co_mach) {
        overhead_w += cfg_.mach.co_mach_power_w;
    }
    r.energy.mach_overhead = overhead_w * span_s;

    r.writeback = p.wb->totals();
    r.display = p.dc.totals();
    if (p.machs) {
        r.mach = p.machs->stats();
        r.top_match_shares = p.machs->topMatchShares(32);
        r.co_mach_inserts = p.machs->coMachInserts();
    }
    r.dram_vd = p.mem.energy().counts(Requester::kVideoDecoder);
    r.dram_dc = p.mem.energy().counts(Requester::kDisplayController);
    r.dram_total = p.mem.energy().totalCounts();
    r.peak_buffers = p.fbm.slotsAllocated();
    r.pool_bytes = p.fbm.poolBytes();
    r.vd_cache_miss_rate = p.vd.cache().missRate();
    if (p.dc.displayCache() != nullptr) {
        r.display_cache_hits = p.dc.displayCache()->hitCount();
        r.display_cache_misses = p.dc.displayCache()->missCount();
    }
    if (p.dc.machBuffer() != nullptr) {
        r.mach_buffer_hits = p.dc.machBuffer()->hitCount();
        r.mach_buffer_misses = p.dc.machBuffer()->missCount();
    }
    r.dram_retries = p.mem.controller().retryCount();
    r.dram_abandoned = p.mem.controller().abandonedCount();
    if (p.faults) {
        r.faults = p.faults->totals();
    }

    if (cfg_.frame_csv != nullptr) {
        std::ostream &os = *cfg_.frame_csv;
        os << "frame,start_ms,finish_ms,deadline_ms,exec_ms,slack_ms,"
              "trans_ms,s1_ms,s3_ms,e_exec_mj,e_slack_mj,e_trans_mj,"
              "e_sleep_mj,dropped\n";
        for (std::size_t f = 0; f < r.frame_records.size(); ++f) {
            const FrameStateRecord &rec = r.frame_records[f];
            os << f << ',' << ticksToMs(rec.start) << ','
               << ticksToMs(rec.finish) << ','
               << ticksToMs(rec.deadline) << ','
               << ticksToMs(rec.exec) << ',' << ticksToMs(rec.slack)
               << ',' << ticksToMs(rec.transition) << ','
               << ticksToMs(rec.s1) << ',' << ticksToMs(rec.s3) << ','
               << rec.e_exec * 1e3 << ',' << rec.e_slack * 1e3 << ','
               << rec.e_trans * 1e3 << ',' << rec.e_sleep * 1e3 << ','
               << (rec.dropped ? 1 : 0) << '\n';
        }
    }

    if (cfg_.stats_out != nullptr || cfg_.stats_json != nullptr ||
        cfg_.stats_csv != nullptr) {
        StatsRegistry reg;
        p.regStats(reg);
        if (cfg_.stats_out != nullptr) {
            std::ostream &os = *cfg_.stats_out;
            os << "---- " << cfg_.profile.key << " / "
               << schemeName(cfg_.scheme.scheme) << " ----\n";
            reg.dumpText(os);
        }
        if (cfg_.stats_json != nullptr) {
            reg.dumpJson(*cfg_.stats_json);
        }
        if (cfg_.stats_csv != nullptr) {
            reg.dumpCsv(*cfg_.stats_csv);
        }
    }
    // Move, don't copy: the result carries per-frame record vectors.
    return std::move(p.result);
}

PipelineResult
simulateScheme(const VideoProfile &profile, const SchemeConfig &scheme)
{
    PipelineConfig cfg;
    cfg.profile = profile;
    cfg.scheme = scheme;
    VideoPipeline pipeline(std::move(cfg));
    return pipeline.run();
}

} // namespace vstream
