/**
 * @file
 * Recycled surface allocator for the zero-alloc serving hot path.
 *
 * Modeled on the surface_pool/videoframe_allocator shape of hardware
 * video stacks: a fixed set of heavy surfaces (frame-buffer slots,
 * frame layouts, scratch frames) is constructed during warmup and
 * borrowed/returned forever after, so steady-state serving performs
 * zero heap allocation.  The pool is *slot-stable*: surfaces are
 * never moved or destroyed once constructed, so borrowed references
 * stay valid for the surface's whole borrow (FrameBufferManager hands
 * BufferSlot references across the decode pipeline).
 *
 * Acquisition order is deterministic and load-bearing: acquire()
 * always returns the lowest-indexed free surface, which preserves the
 * first-free slot-selection order the frame-buffer manager's DRAM
 * address assignment (and therefore simulation output) depends on.
 *
 * Discipline violations are programming errors and panic:
 * double-release, releasing a surface the pool does not own, and
 * exceeding an optional max_live bound.
 */

#ifndef VSTREAM_CORE_SURFACE_POOL_HH
#define VSTREAM_CORE_SURFACE_POOL_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>

namespace vstream
{

/** Aggregate pool counters (warmup vs steady-state visibility). */
struct SurfacePoolStats
{
    /** Total acquire() calls. */
    std::uint64_t acquires = 0;
    /** Acquires served by recycling a free surface (no construction). */
    std::uint64_t recycles = 0;
    /** Surfaces ever constructed (== allocated()). */
    std::uint64_t constructed = 0;
    /** Total release() calls. */
    std::uint64_t releases = 0;
    /** Surfaces currently borrowed. */
    std::size_t live = 0;
    /** High-water mark of simultaneous borrows. */
    std::size_t peak_live = 0;
};

/** Panic helpers shared by every instantiation (surface_pool.cc). */
[[noreturn]] void surfacePoolPanicDoubleRelease(const std::string &name);
[[noreturn]] void surfacePoolPanicForeign(const std::string &name);
[[noreturn]] void surfacePoolPanicExhausted(const std::string &name,
                                            std::size_t max_live);

/** Slot-stable borrow pool of recycled surfaces; see file comment. */
template <typename Surface>
class SurfacePool
{
  public:
    /**
     * @param name     diagnostic name used in panic messages
     * @param max_live optional bound on simultaneous borrows
     *                 (0 = unbounded); exceeding it panics
     */
    explicit SurfacePool(std::string name, std::size_t max_live = 0)
        : name_(std::move(name)), max_live_(max_live)
    {
    }

    /**
     * Borrow the lowest-indexed free surface; when none is free,
     * construct a new one with @p make (called only on growth, so
     * construction side effects - DRAM region allocation, capacity
     * reservation - happen exactly once per surface).  Recycled
     * surfaces are returned as-is; the caller reinitialises logical
     * state and keeps the storage.
     */
    template <typename Make>
    Surface &
    acquire(Make &&make)
    {
        ++stats_.acquires;
        for (Entry &e : entries_) {
            if (!e.live) {
                e.live = true;
                ++stats_.recycles;
                noteBorrow();
                return e.surface;
            }
        }
        if (max_live_ != 0 && stats_.live >= max_live_) {
            surfacePoolPanicExhausted(name_, max_live_);
        }
        // vstream:allow(no-hotpath-alloc) pool growth is the one
        // place surfaces are built; steady state always recycles
        entries_.push_back(Entry{make(), true});
        ++stats_.constructed;
        noteBorrow();
        return entries_.back().surface;
    }

    /** Borrow with default construction on growth. */
    Surface &
    acquire()
    {
        return acquire([] { return Surface{}; });
    }

    /**
     * Return a borrowed surface.  Panics on double release and on
     * surfaces the pool never constructed.
     */
    void
    release(Surface &s)
    {
        for (Entry &e : entries_) {
            if (&e.surface != &s) {
                continue;
            }
            if (!e.live) {
                surfacePoolPanicDoubleRelease(name_);
            }
            e.live = false;
            ++stats_.releases;
            --stats_.live;
            return;
        }
        surfacePoolPanicForeign(name_);
    }

    /** Surfaces ever constructed (slot-stable: never shrinks). */
    std::size_t allocated() const { return entries_.size(); }

    /** Surface at index @p i (constructed order; stable). */
    Surface &at(std::size_t i) { return entries_[i].surface; }
    const Surface &at(std::size_t i) const
    {
        return entries_[i].surface;
    }

    /** True when the surface at index @p i is currently borrowed. */
    bool liveAt(std::size_t i) const { return entries_[i].live; }

    const SurfacePoolStats &stats() const { return stats_; }
    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        Surface surface;
        bool live = false;
    };

    void
    noteBorrow()
    {
        ++stats_.live;
        if (stats_.live > stats_.peak_live) {
            stats_.peak_live = stats_.live;
        }
    }

    std::string name_;
    std::size_t max_live_;
    /** Deque: growth must not invalidate borrowed references. */
    std::deque<Entry> entries_;
    SurfacePoolStats stats_;
};

} // namespace vstream

#endif // VSTREAM_CORE_SURFACE_POOL_HH
