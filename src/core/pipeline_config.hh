/**
 * @file
 * Scheme and pipeline configuration.
 *
 * A SchemeConfig captures one of the paper's six evaluated schemes
 * (Fig. 11): L (baseline), B (batching), R (racing), S (race-to-
 * sleep), M (S + MACH/mab), G (S + MACH/gab); PipelineConfig bundles
 * it with the video profile and all substrate parameters.
 */

#ifndef VSTREAM_CORE_PIPELINE_CONFIG_HH
#define VSTREAM_CORE_PIPELINE_CONFIG_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/framebuffer_layout.hh"
#include "core/mach_config.hh"
#include "decoder/decoder_config.hh"
#include "display/display_config.hh"
#include "mem/dram_config.hh"
#include "power/power_state.hh"
#include "sim/fault_injector.hh"
#include "video/arrival_model.hh"
#include "video/video_profile.hh"

namespace vstream
{

class TraceEventSink;

/** The six evaluated schemes. */
enum class Scheme : std::uint8_t
{
    kBaseline,    // L: frame-by-frame, low frequency
    kBatching,    // B: batch decoding, low frequency
    kRacing,      // R: frame-by-frame, high frequency
    kRaceToSleep, // S: batching + high frequency
    kMab,         // M: S + MACH with raw macroblocks
    kGab,         // G: S + MACH with gradient blocks
};

/** Short key ("L".."G"). */
std::string schemeKey(Scheme s);
/** Long name ("Race-to-Sleep", ...). */
std::string schemeName(Scheme s);

/** Knob settings for one scheme. */
struct SchemeConfig
{
    Scheme scheme = Scheme::kBaseline;
    /** Frames decoded back-to-back per decoder wake-up. */
    std::uint32_t batch = 1;
    VdFrequency freq = VdFrequency::kLow;
    /** Content caching at the VD. */
    bool mach = false;
    /** gab (gradient) vs mab representation. */
    bool gradient = false;
    /** Frame-buffer layout written by the decoder. */
    LayoutKind layout = LayoutKind::kLinear;
    bool display_cache = false;
    bool mach_buffer = false;
    bool co_mach = false;
    bool dcc = false;
    /** Whole-frame checksum transaction elimination at the DC (the
     * industrial scheme of [9]/[35]); complementary to MACH. */
    bool transaction_elimination = false;

    /**
     * History-based per-frame DVFS (the related-work scale-down
     * scheme of [57]/[66] the paper argues against): an EWMA of
     * recent decode times predicts the next frame's slack and the
     * decoder drops to the low P-state whenever the prediction says
     * it is safe.  Saves power on predictable content but drops
     * frames on mispredictions - the contrast `bench_ablation_dvfs`
     * quantifies.  Overrides `freq` per frame.
     */
    bool dvfs_slack = false;
    /** Fraction of the frame period the predicted decode time must
     * stay under for the low P-state to be chosen. */
    double dvfs_margin = 0.92;

    /** Canonical settings for @p s (paper defaults; batch = 16). */
    static SchemeConfig make(Scheme s, std::uint32_t batch_frames = 16);
};

/** Everything needed to simulate one video under one scheme. */
struct PipelineConfig
{
    VideoProfile profile;
    SchemeConfig scheme;
    DramConfig dram;
    DecoderConfig decoder;
    DisplayConfig display;
    MachConfig mach;

    // --- streaming/buffering model --------------------------------------
    /** Interval between network chunk deliveries (paper: 400-500 ms). */
    Tick buffer_interval = static_cast<Tick>(450) * sim_clock::ms;
    /** Frames available at t = 0 (pre-roll). */
    std::uint32_t preroll_frames = 32;
    /** Vsyncs between t = 0 and the first frame's deadline. */
    std::uint32_t startup_vsyncs = 4;

    /** Verify every displayed frame against its source checksum. */
    bool verify_display = true;

    // --- robustness -----------------------------------------------------
    /** Fault-injection schedule (empty = pristine world, zero cost). */
    FaultConfig faults;
    /** Explicit network arrival model (disabled = seed chunk model,
     * bit-identical results). */
    ArrivalConfig arrival;

    /** When non-null, the pipeline dumps every component's detailed
     * statistics (gem5-style "name value" lines) here after the run. */
    std::ostream *stats_out = nullptr;

    /** When non-null, the same registry is exported as JSON here
     * (schema "vstream-stats-1", see docs/STATS.md). */
    std::ostream *stats_json = nullptr;

    /** When non-null, the same registry is exported as CSV here
     * (one "name,kind,field,value" row per field). */
    std::ostream *stats_csv = nullptr;

    /** When non-null, the run's timeline (decode bursts, power-state
     * dwells, scan-outs, DRAM counters) is recorded here in Chrome
     * trace-event form (see docs/TRACING.md). */
    TraceEventSink *trace = nullptr;

    /** When non-null, per-frame records are written here as CSV
     * (one row per frame: timings, state shares, energies, drops) -
     * the raw data behind the Fig. 2/4 CDF plots. */
    std::ostream *frame_csv = nullptr;

    /**
     * Ratio of a native 4K frame to the simulated frame, applied to
     * per-burst and per-activation DRAM energies so that memory
     * energy keeps its full-resolution share of the budget (see
     * DESIGN.md, substitutions).
     */
    double trafficEnergyScale() const;

    /**
     * Derive dependent parameters:
     *  - display/MACH flags from the scheme,
     *  - the DRAM row-open timeout from the decoder's mab rate at the
     *    low frequency (the Fig. 5 race-vs-Act/Pre mechanism).
     * Must be called before constructing a VideoPipeline.
     */
    void finalize();

    void validate() const;
};

} // namespace vstream

#endif // VSTREAM_CORE_PIPELINE_CONFIG_HH
