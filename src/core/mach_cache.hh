/**
 * @file
 * One per-frame MACH: a digest-indexed, set-associative cache mapping
 * macroblock digests to the memory addresses of their (unique) data.
 *
 * Entries carry the 32-bit primary digest as the tag, an optional
 * 16-bit auxiliary CRC16 (CO-MACH collision detection), the pointer
 * to the block in the frame buffer, and - simulation only - a copy of
 * the true block bytes so hash collisions can be counted exactly.
 *
 * A MACH is mutable while its frame is being decoded and is frozen
 * afterwards; frozen MACHs serve lookups from younger frames and are
 * dumped to memory for the display's MACH buffer.
 */

#ifndef VSTREAM_CORE_MACH_CACHE_HH
#define VSTREAM_CORE_MACH_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "core/mach_config.hh"
#include "mem/mem_request.hh"

namespace vstream
{

/**
 * One MACH entry.  The ground-truth block bytes used for
 * simulation-side collision verification live in the cache's shared
 * arena (one fixed-stride slab per entry), not in the entry itself,
 * so inserts never allocate.
 */
struct MachEntry
{
    bool valid = false;
    std::uint32_t digest = 0;
    std::uint16_t aux = 0;
    Addr ptr = 0;
};

/** Result of probing one MACH. */
struct MachProbe
{
    bool hit = false;
    Addr ptr = 0;
    /**
     * The tag matched but the stored content differs: a digest
     * collision.  With CO-MACH the CRC16 usually catches it (the
     * probe then reports a miss with collision_detected); without,
     * the hit stands and the display would show the wrong block
     * (collision_undetected).
     */
    bool collision_detected = false;
    bool collision_undetected = false;
};

/** A single per-frame macroblock cache. */
class MachCache
{
  public:
    /**
     * @param cfg        geometry and behaviour
     * @param entries    entry count override (CO-MACH reuses this
     *                   class with its own size); 0 = cfg.entries
     * @param full_tags  compare aux (CRC16) as part of the tag
     */
    explicit MachCache(const MachConfig &cfg, std::uint32_t entries = 0,
                       bool full_tags = false);

    /**
     * Probe for @p digest (and @p aux when CO-MACH is on).
     *
     * @param truth  actual block bytes, for collision accounting.
     */
    MachProbe lookup(std::uint32_t digest, std::uint16_t aux,
                     const std::vector<std::uint8_t> &truth);

    /** Insert a mapping digest -> ptr (evicts LRU if needed). */
    void insert(std::uint32_t digest, std::uint16_t aux, Addr ptr,
                const std::vector<std::uint8_t> &truth);

    /** Freeze: further insert() calls panic. */
    void freeze() { frozen_ = true; }
    bool frozen() const { return frozen_; }

    /**
     * Return to the freshly constructed state without releasing any
     * storage: entries invalidated, freeze lifted, replacement state
     * re-seeded.  The truth arena (whose stride is fixed for a whole
     * stream) is kept, so recycled frames insert with zero heap
     * allocation.
     */
    void recycle();

    /** Number of valid entries. */
    std::uint32_t validCount() const;

    /** Size of the dumped metadata image in memory (digest+pointer
     * per valid entry). */
    std::uint64_t dumpBytes() const;

    /** All valid entries (for the display-side MACH-buffer load). */
    std::vector<const MachEntry *> validEntries() const;

    /** Visit every valid entry in index order without allocating. */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const MachEntry &e : entries_) {
            if (e.valid) {
                fn(e);
            }
        }
    }

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

  private:
    MachEntry &entry(std::uint32_t set, std::uint32_t way);
    const MachEntry &entry(std::uint32_t set, std::uint32_t way) const;
    std::uint32_t setOf(std::uint32_t digest) const;

    /** Arena slab of the entry at (set, way). */
    std::uint8_t *truthAt(std::uint32_t set, std::uint32_t way);
    const std::uint8_t *truthAt(std::uint32_t set,
                                std::uint32_t way) const;

    // By value: a reference member dangles when the cache is built
    // from a temporary config (ASan stack-use-after-scope).
    MachConfig cfg_;
    std::uint32_t sets_;
    std::uint32_t ways_;
    bool full_tags_;
    bool frozen_ = false;
    std::vector<MachEntry> entries_;
    /** Fixed per-entry byte stride, learned from the first insert
     * (every block in one cache has the same size). */
    std::uint32_t truth_stride_ = 0;
    std::vector<std::uint8_t> truth_arena_;
    ReplacementState repl_;
};

} // namespace vstream

#endif // VSTREAM_CORE_MACH_CACHE_HH
