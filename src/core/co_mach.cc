#include "core/co_mach.hh"

namespace vstream
{

CoMach::CoMach(const MachConfig &cfg)
    : cfg_(cfg),
      cache_(std::make_unique<MachCache>(cfg, cfg.co_mach_entries,
                                         /*full_tags=*/true))
{
}

void
CoMach::beginFrame()
{
    // Recycle in place: the entry array and truth arena are reused,
    // so frame boundaries cost no heap traffic.
    cache_->recycle();
}

MachProbe
CoMach::lookup(std::uint32_t digest, std::uint16_t aux,
               const std::vector<std::uint8_t> &truth)
{
    return cache_->lookup(digest, aux, truth);
}

void
CoMach::insert(std::uint32_t digest, std::uint16_t aux, Addr ptr,
               const std::vector<std::uint8_t> &truth)
{
    ++inserts_;
    cache_->insert(digest, aux, ptr, truth);
}

} // namespace vstream
