#include "core/co_mach.hh"

namespace vstream
{

CoMach::CoMach(const MachConfig &cfg)
    : cfg_(cfg),
      cache_(std::make_unique<MachCache>(cfg, cfg.co_mach_entries,
                                         /*full_tags=*/true))
{
}

void
CoMach::beginFrame()
{
    cache_ = std::make_unique<MachCache>(cfg_, cfg_.co_mach_entries,
                                         /*full_tags=*/true);
}

MachProbe
CoMach::lookup(std::uint32_t digest, std::uint16_t aux,
               const std::vector<std::uint8_t> &truth)
{
    return cache_->lookup(digest, aux, truth);
}

void
CoMach::insert(std::uint32_t digest, std::uint16_t aux, Addr ptr,
               const std::vector<std::uint8_t> &truth)
{
    ++inserts_;
    cache_->insert(digest, aux, ptr, truth);
}

} // namespace vstream
