#include "core/dcc.hh"

#include <algorithm>
#include <cstdlib>

namespace vstream
{

namespace
{

/** Bits needed to hold a signed value in [-256, 255]. */
std::uint32_t
signedBits(int v)
{
    if (v == 0)
        return 0;
    const unsigned mag = static_cast<unsigned>(std::abs(v));
    std::uint32_t bits = 0;
    while ((1u << bits) <= mag)
        ++bits;
    return bits + 1; // sign bit
}

} // namespace

DccResult
dccCompress(const Macroblock &mab)
{
    const Pixel base = mab.base();
    const std::uint32_t n = mab.pixelCount();

    std::uint32_t bits_r = 0, bits_g = 0, bits_b = 0;
    for (std::uint32_t i = 1; i < n; ++i) {
        const Pixel p = mab.pixel(i);
        bits_r = std::max(bits_r, signedBits(static_cast<int>(p.r) -
                                             static_cast<int>(base.r)));
        bits_g = std::max(bits_g, signedBits(static_cast<int>(p.g) -
                                             static_cast<int>(base.g)));
        bits_b = std::max(bits_b, signedBits(static_cast<int>(p.b) -
                                             static_cast<int>(base.b)));
    }

    const std::uint32_t header = 2;  // 3x 4-bit widths + mode flag
    const std::uint32_t payload_bits =
        (n - 1) * (bits_r + bits_g + bits_b);
    const std::uint32_t packed =
        header + kBytesPerPixel + (payload_bits + 7) / 8;

    DccResult result;
    if (packed < mab.sizeBytes()) {
        result.compressed = true;
        result.compressed_bytes = packed;
    } else {
        result.compressed = false;
        result.compressed_bytes = mab.sizeBytes() + 1;
    }
    return result;
}

} // namespace vstream
