/**
 * @file
 * Write-combining buffer for sub-line metadata (Sec. 4.4).
 *
 * Bases (3 B), pointers (4 B) and digests (4 B) are far smaller than
 * a 64 B memory transaction; MACH coalesces each kind into its own
 * 64 B buffer and only writes a buffer to memory when it fills (or at
 * frame end).  This keeps metadata from multiplying the request
 * count.
 */

#ifndef VSTREAM_CORE_COALESCING_BUFFER_HH
#define VSTREAM_CORE_COALESCING_BUFFER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "mem/mem_request.hh"
#include "sim/ticks.hh"

namespace vstream
{

/**
 * One write-combining buffer appending into a contiguous region.
 *
 * The owner supplies a sink invoked with (addr, size, now) whenever a
 * full buffer (or the final partial one) is written out.
 */
class CoalescingBuffer
{
  public:
    using WriteSink =
        std::function<void(Addr addr, std::uint32_t size, Tick now)>;

    CoalescingBuffer(std::string name, std::uint32_t capacity,
                     WriteSink sink);

    /** Start appending at @p region_base (e.g. a new frame). */
    void rebase(Addr region_base);

    /** Append @p bytes at time @p now; may trigger a sink write. */
    void append(std::uint32_t bytes, Tick now);

    /** Write out any residue (frame end). */
    void flush(Tick now);

    /** Total payload bytes appended. */
    std::uint64_t bytesAppended() const { return bytes_appended_; }

    /** Memory write transactions issued. */
    std::uint64_t writesIssued() const { return writes_issued_; }

    /** Next address to be written (region usage). */
    Addr cursor() const { return cursor_; }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint32_t capacity_;
    WriteSink sink_;
    Addr cursor_ = 0;
    std::uint32_t filled_ = 0;
    std::uint64_t bytes_appended_ = 0;
    std::uint64_t writes_issued_ = 0;
};

} // namespace vstream

#endif // VSTREAM_CORE_COALESCING_BUFFER_HH
