/**
 * @file
 * Frame-buffer layouts (paper Fig. 9c).
 *
 * Three layouts cover the design space:
 *  - kLinear        (i):  the baseline; mab i lives at data_base+i*48.
 *  - kPointer       (ii): MACH-compacted; a 4 B pointer per mab leads
 *                         to the (deduplicated) block data.
 *  - kPointerDigest (iii):inter-matches are stored as digests served
 *                         by the display's MACH buffer; a bitmap
 *                         distinguishes digests from pointers.
 * In gab mode, every non-unique mab additionally stores its 3 B base.
 */

#ifndef VSTREAM_CORE_FRAMEBUFFER_LAYOUT_HH
#define VSTREAM_CORE_FRAMEBUFFER_LAYOUT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mem/mem_request.hh"
#include "video/pixel.hh"

namespace vstream
{

/** Which frame-buffer organization a frame was written with. */
enum class LayoutKind : std::uint8_t
{
    kLinear,
    kPointer,
    kPointerDigest,
};

std::string layoutKindName(LayoutKind k);

/** How one mab is represented in the layout. */
enum class MabStorage : std::uint8_t
{
    /** Block data written at data_addr (no match). */
    kUnique,
    /** Pointer to an earlier block of the same frame. */
    kIntraPointer,
    /** Pointer to a block of a previous frame. */
    kInterPointer,
    /** Digest resolved through the display's MACH buffer. */
    kInterDigest,
};

/** Per-mab record the display walks during scan-out. */
struct MabRecord
{
    MabStorage storage = MabStorage::kUnique;
    /** Address of the block bytes (not meaningful for kInterDigest
     * unless the MACH buffer misses and the dump is consulted). */
    Addr data_addr = 0;
    /** Content digest (always computed; the tag for kInterDigest). */
    std::uint32_t digest = 0;
    /** gab base to re-add during reconstruction. */
    Pixel base;
};

/** The complete description of one decoded frame in memory. */
class FrameLayout
{
  public:
    /** Empty layout awaiting reinit() (pooled storage). */
    FrameLayout() = default;

    FrameLayout(std::uint64_t frame_index, LayoutKind kind,
                std::uint32_t mab_count, std::uint32_t mab_bytes,
                bool gradient_mode);

    /**
     * Reset to the state the equivalent constructor would produce,
     * keeping the record and dump storage: a recycled layout serves
     * a new frame with zero heap allocation once its capacity has
     * grown to the stream's mab count.
     */
    void reinit(std::uint64_t frame_index, LayoutKind kind,
                std::uint32_t mab_count, std::uint32_t mab_bytes,
                bool gradient_mode);

    std::uint64_t frameIndex() const { return frame_index_; }
    LayoutKind kind() const { return kind_; }
    bool gradientMode() const { return gradient_mode_; }
    std::uint32_t mabBytes() const { return mab_bytes_; }
    std::uint32_t mabCount() const
    {
        return static_cast<std::uint32_t>(records_.size());
    }

    MabRecord &record(std::uint32_t i) { return records_.at(i); }
    const MabRecord &record(std::uint32_t i) const
    {
        return records_.at(i);
    }

    /** Metadata region base (pointers/digests/bases/bitmap). */
    Addr metaBase() const { return meta_base_; }
    void setMetaBase(Addr a) { meta_base_ = a; }

    /** Block-data region base. */
    Addr dataBase() const { return data_base_; }
    void setDataBase(Addr a) { data_base_ = a; }

    /** Address of the frame's dumped MACH image (layout iii). */
    Addr machDumpBase() const { return mach_dump_base_; }
    void setMachDumpBase(Addr a) { mach_dump_base_ = a; }
    std::uint64_t machDumpBytes() const { return mach_dump_bytes_; }
    void setMachDumpBytes(std::uint64_t b) { mach_dump_bytes_ = b; }

    /** Unique block bytes written to the data region. */
    std::uint64_t dataBytes() const { return data_bytes_; }
    void setDataBytes(std::uint64_t b) { data_bytes_ = b; }

    /** Metadata bytes written (pointers + digests + bases + bitmap). */
    std::uint64_t metaBytes() const { return meta_bytes_; }
    void setMetaBytes(std::uint64_t b) { meta_bytes_ = b; }

    /** Total footprint of the stored frame. */
    std::uint64_t totalBytes() const { return data_bytes_ + meta_bytes_; }

    /** Checksum of the source frame (round-trip verification). */
    std::uint32_t sourceChecksum() const { return source_checksum_; }
    void setSourceChecksum(std::uint32_t c) { source_checksum_ = c; }

    /** Count of records with the given storage class. */
    std::uint64_t countStorage(MabStorage s) const;

    /** The dumped MACH image: digest -> pointer pairs the display
     * loads into its MACH buffer (layout iii only). */
    const std::vector<std::pair<std::uint32_t, Addr>> &machDump() const
    {
        return mach_dump_;
    }
    void
    setMachDump(std::vector<std::pair<std::uint32_t, Addr>> dump)
    {
        mach_dump_ = std::move(dump);
    }

    /** Mutable dump for in-place building (keeps pooled capacity). */
    std::vector<std::pair<std::uint32_t, Addr>> &
    machDumpMutable()
    {
        return mach_dump_;
    }

  private:
    std::uint64_t frame_index_ = 0;
    LayoutKind kind_ = LayoutKind::kLinear;
    std::uint32_t mab_bytes_ = 0;
    bool gradient_mode_ = false;
    std::vector<MabRecord> records_;
    Addr meta_base_ = 0;
    Addr data_base_ = 0;
    Addr mach_dump_base_ = 0;
    std::uint64_t mach_dump_bytes_ = 0;
    std::uint64_t data_bytes_ = 0;
    std::uint64_t meta_bytes_ = 0;
    std::uint32_t source_checksum_ = 0;
    std::vector<std::pair<std::uint32_t, Addr>> mach_dump_;
};

} // namespace vstream

#endif // VSTREAM_CORE_FRAMEBUFFER_LAYOUT_HH
