#include "core/coalescing_buffer.hh"

#include <utility>

#include "sim/logging.hh"

namespace vstream
{

CoalescingBuffer::CoalescingBuffer(std::string name, std::uint32_t capacity,
                                   WriteSink sink)
    : name_(std::move(name)), capacity_(capacity), sink_(std::move(sink))
{
    vs_assert(capacity_ > 0, "coalescing buffer needs capacity");
    vs_assert(sink_ != nullptr, "coalescing buffer needs a sink");
}

void
CoalescingBuffer::rebase(Addr region_base)
{
    vs_assert(filled_ == 0,
              "rebase of '", name_, "' with unflushed bytes");
    cursor_ = region_base;
}

void
CoalescingBuffer::append(std::uint32_t bytes, Tick now)
{
    bytes_appended_ += bytes;
    filled_ += bytes;
    while (filled_ >= capacity_) {
        sink_(cursor_, capacity_, now);
        ++writes_issued_;
        cursor_ += capacity_;
        filled_ -= capacity_;
    }
}

void
CoalescingBuffer::flush(Tick now)
{
    if (filled_ > 0) {
        sink_(cursor_, filled_, now);
        ++writes_issued_;
        cursor_ += filled_;
        filled_ = 0;
    }
}

} // namespace vstream
