#include "core/surface_pool.hh"

#include "sim/logging.hh"

namespace vstream
{

void
surfacePoolPanicDoubleRelease(const std::string &name)
{
    vs_panic("surface pool '", name,
             "': release of a surface that is not borrowed "
             "(double release)");
}

void
surfacePoolPanicForeign(const std::string &name)
{
    vs_panic("surface pool '", name,
             "': release of a surface this pool does not own");
}

void
surfacePoolPanicExhausted(const std::string &name, std::size_t max_live)
{
    vs_panic("surface pool '", name, "' exhausted: max_live=",
             max_live, " surfaces already borrowed");
}

} // namespace vstream
