/**
 * @file
 * End-to-end video streaming pipeline.
 *
 * Wires the substrates together - synthetic video source, stream
 * buffering, video decoder (with its writeback stage and optional
 * MACH), frame-buffer pool, LPDDR3 memory, display controller - and
 * simulates the playback of one video under one scheme on a single
 * timeline: the decoder wakes per its scheduling policy (frame-by-
 * frame or batched, low or high frequency), the display scans out at
 * every vsync, drops are detected, the sleep governor spends the idle
 * windows, and every joule is attributed to the nine Fig. 11
 * categories.
 */

#ifndef VSTREAM_CORE_VIDEO_PIPELINE_HH
#define VSTREAM_CORE_VIDEO_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mach_array.hh"
#include "core/pipeline_config.hh"
#include "core/writeback_stage.hh"
#include "display/display_controller.hh"
#include "mem/dram_energy.hh"
#include "power/energy_breakdown.hh"
#include "power/sleep_governor.hh"

namespace vstream
{

/** Per-frame decoder-state attribution (Fig. 2/4 CDFs). */
struct FrameStateRecord
{
    Tick start = 0;
    Tick finish = 0;
    Tick deadline = 0;
    Tick exec = 0;
    Tick slack = 0;
    Tick transition = 0;
    Tick s1 = 0;
    Tick s3 = 0;
    double e_exec = 0.0;
    double e_slack = 0.0;
    double e_trans = 0.0;
    double e_sleep = 0.0;
    bool dropped = false;

    Tick
    stateTotal() const
    {
        return exec + slack + transition + s1 + s3;
    }
};

/** Everything a bench needs from one simulated playback. */
struct PipelineResult
{
    std::string video_key;
    Scheme scheme = Scheme::kBaseline;
    std::uint32_t frames = 0;
    std::uint32_t drops = 0;
    Tick span = 0;

    EnergyBreakdown energy;
    TimeBreakdown vd_time;
    std::vector<FrameStateRecord> frame_records;

    WritebackTotals writeback;
    DisplayTotals display;
    MachStats mach;
    std::vector<double> top_match_shares;

    DramActivityCounts dram_vd;
    DramActivityCounts dram_dc;
    DramActivityCounts dram_total;

    std::uint32_t peak_buffers = 0;
    std::uint64_t pool_bytes = 0;
    std::uint64_t sleep_events = 0;
    std::uint64_t co_mach_inserts = 0;
    std::uint64_t display_cache_hits = 0;
    std::uint64_t display_cache_misses = 0;
    std::uint64_t mach_buffer_hits = 0;
    std::uint64_t mach_buffer_misses = 0;
    double vd_cache_miss_rate = 0.0;
    bool all_verified = true;

    // --- robustness (all zero in a pristine run) ----------------------
    /** Injection totals across every fault class. */
    FaultTotals faults;
    /** Vsyncs missed because the frame had not arrived yet. */
    std::uint64_t underruns = 0;
    /** Decoder wake-ups with fewer than a full batch delivered. */
    std::uint64_t batch_shrinks = 0;
    /** DRAM bursts re-issued after injected timeouts. */
    std::uint64_t dram_retries = 0;
    /** DRAM bursts abandoned after exhausting the retry budget. */
    std::uint64_t dram_abandoned = 0;

    double totalEnergy() const { return energy.total(); }
    /** Fraction of the span the decoder spent in S3. */
    double s3Residency() const;
    /** Fraction of frames dropped. */
    double dropRate() const;
};

struct Playback;

/**
 * Pipeline simulator.
 *
 * Two driving modes share one implementation:
 *  - run() simulates the whole playback in one call (the classic
 *    single-session mode every bench uses);
 *  - start() / stepVsync() / finish() expose the same simulation one
 *    vsync at a time, so a SessionManager can interleave many
 *    sessions on a shared event queue (src/serve/).  Stepping the
 *    pipeline to completion is bit-identical to run().
 */
class VideoPipeline
{
  public:
    /** @param cfg finalized by the constructor (finalize() called). */
    explicit VideoPipeline(PipelineConfig cfg);
    ~VideoPipeline();

    VideoPipeline(const VideoPipeline &) = delete;
    VideoPipeline &operator=(const VideoPipeline &) = delete;

    /** Simulate the full playback; may be called once per object. */
    PipelineResult run();

    // --- stepwise interface (multi-session serving) -------------------

    /** Allocate the substrates; must precede the first stepVsync(). */
    void start();

    /** All vsyncs processed (finish() may be called)? */
    bool stepDone() const;

    /** Local tick of the next pending vsync (valid until stepDone). */
    Tick nextVsyncTick() const;

    /** Process one vsync: decode everything due, scan out, account. */
    void stepVsync();

    /**
     * Close the final idle window and assemble the result.
     *
     * May be called before stepDone() to terminate a session early
     * (quarantine/eviction): the partial playback is accounted as-is.
     */
    PipelineResult finish();

    // --- health/breaker hooks (read-only unless noted) ----------------

    /** MACH present in this scheme (breaker has something to trip)? */
    bool hasMach() const;

    /** Bypass (true) or re-enable (false) the MACH array: the
     * circuit-breaker fallback to full 48 B unique writes. */
    void setMachBypass(bool on);

    /** Attach @p obs to the MACH array's unique-block writes (no-op
     * for schemes without MACH); the shared dedup tier's recording
     * hook (serve/shared_mach.hh). */
    void setMachWriteObserver(MachWriteObserver obs);

    /** Live mid-run counters (drops, underruns, batch shrinks). */
    const PipelineResult &liveResult() const;

    /** Live MACH counters (falseHits drive the circuit breaker). */
    MachStats liveMachStats() const;

    /** DRAM bursts abandoned so far (abandon-budget health input). */
    std::uint64_t liveDramAbandoned() const;

    /** Bytes moved through DRAM so far (bandwidth accounting). */
    std::uint64_t liveDramBytes() const;

    const PipelineConfig &config() const { return cfg_; }

  private:
    PipelineConfig cfg_;
    std::unique_ptr<Playback> p_;
    std::uint32_t next_vsync_ = 0;
    bool ran_ = false;
    bool finished_ = false;
};

/** Convenience: simulate @p profile under @p scheme. */
PipelineResult simulateScheme(const VideoProfile &profile,
                              const SchemeConfig &scheme);

} // namespace vstream

#endif // VSTREAM_CORE_VIDEO_PIPELINE_HH
