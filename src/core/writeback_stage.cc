#include "core/writeback_stage.hh"

#include "core/dcc.hh"
#include "hash/hasher.hh"
#include "sim/logging.hh"

namespace vstream
{

double
WritebackTotals::savings(std::uint32_t mab_bytes) const
{
    const auto baseline = baselineBytes(mab_bytes);
    if (baseline == 0) {
        return 0.0;
    }
    return 1.0 - static_cast<double>(totalBytes()) /
                     static_cast<double>(baseline);
}

// ---------------------------------------------------------------------
// LinearWriteback
// ---------------------------------------------------------------------

LinearWriteback::LinearWriteback(MemorySystem &mem, FrameBufferManager &fbm)
    : mem_(mem), fbm_(fbm),
      data_buf_("wb.linear.data", 64,
                [this](Addr addr, std::uint32_t size, Tick now) {
                    mem_.write(addr, size, Requester::kVideoDecoder, now);
                    ++totals_.dram_write_requests;
                })
{
}

void
LinearWriteback::beginFrame(const Frame &frame, BufferSlot &slot, Tick now,
                            FrameLayout &layout)
{
    slot_ = &slot;
    mab_bytes_ = frame.mab(0).sizeBytes();
    layout.reinit(frame.index(), LayoutKind::kLinear, frame.mabCount(),
                  mab_bytes_, /*gradient_mode=*/false);
    layout_ = &layout;
    layout_->setDataBase(slot.data_base);
    layout_->setMetaBase(slot.meta_base);
    layout_->setSourceChecksum(frame.contentChecksum());
    data_buf_.rebase(slot.data_base);
    last_tick_ = now;
}

// vstream:hot
void
LinearWriteback::writeMab(const Macroblock &mab, std::uint32_t idx,
                          Tick now)
{
    vs_assert(layout_ != nullptr, "writeMab outside a frame");
    const Addr addr =
        slot_->data_base + static_cast<Addr>(idx) * mab_bytes_;
    fbm_.storeBlock(addr, mab.bytes());

    MabRecord &rec = layout_->record(idx);
    rec.storage = MabStorage::kUnique;
    rec.data_addr = addr;
    rec.base = mab.base();

    data_buf_.append(mab.sizeBytes(), now);
    ++totals_.mabs;
    ++totals_.unique_blocks;
    totals_.data_bytes += mab.sizeBytes();
    last_tick_ = now;
}

void
LinearWriteback::finishFrame(Tick now)
{
    vs_assert(layout_ != nullptr, "finishFrame outside a frame");
    data_buf_.flush(now);
    layout_->setDataBytes(static_cast<std::uint64_t>(
                              layout_->mabCount()) *
                          mab_bytes_);
    layout_->setMetaBytes(0);
    layout_ = nullptr;
    slot_ = nullptr;
}

// ---------------------------------------------------------------------
// MachWriteback
// ---------------------------------------------------------------------

MachWriteback::MachWriteback(MemorySystem &mem, FrameBufferManager &fbm,
                             MachArray &machs, LayoutKind layout_kind,
                             bool use_dcc)
    : mem_(mem), fbm_(fbm), machs_(machs), layout_kind_(layout_kind),
      use_dcc_(use_dcc),
      data_buf_("wb.mach.data", machs.config().coalesce_bytes,
                [this](Addr addr, std::uint32_t size, Tick now) {
                    mem_.write(addr, size, Requester::kVideoDecoder, now);
                    ++totals_.dram_write_requests;
                }),
      meta_buf_("wb.mach.meta", machs.config().coalesce_bytes,
                [this](Addr addr, std::uint32_t size, Tick now) {
                    mem_.write(addr, size, Requester::kVideoDecoder, now);
                    ++totals_.dram_write_requests;
                }),
      base_buf_("wb.mach.base", machs.config().coalesce_bytes,
                [this](Addr addr, std::uint32_t size, Tick now) {
                    mem_.write(addr, size, Requester::kVideoDecoder, now);
                    ++totals_.dram_write_requests;
                })
{
    vs_assert(layout_kind_ != LayoutKind::kLinear,
              "MachWriteback requires a pointer-based layout");
}

void
MachWriteback::beginFrame(const Frame &frame, BufferSlot &slot, Tick now,
                          FrameLayout &layout)
{
    slot_ = &slot;
    mab_bytes_ = frame.mab(0).sizeBytes();
    machs_.beginFrame();
    layout.reinit(frame.index(), layout_kind_, frame.mabCount(),
                  mab_bytes_, machs_.config().use_gradient);
    layout_ = &layout;
    layout_->setDataBase(slot.data_base);
    layout_->setMetaBase(slot.meta_base);
    layout_->setMachDumpBase(slot.mach_dump_base);
    layout_->setSourceChecksum(frame.contentChecksum());

    data_buf_.rebase(slot.data_base);
    // Pointer/digest stream first, bases behind it (both live in the
    // metadata region; exact packing is immaterial to the model).
    meta_buf_.rebase(slot.meta_base);
    base_buf_.rebase(slot.meta_base +
                     static_cast<Addr>(frame.mabCount()) * 5);

    frame_data_bytes_ = 0;
    frame_meta_bytes_ = 0;
    last_tick_ = now;

    // Whole-frame precompute: run the gab transform over every mab,
    // then digest all blocks in one batched dispatch call instead of
    // re-entering the hash kernel per mab.  The scratch vectors size
    // themselves on the first frame (the mab count is fixed for a
    // stream) and are reused allocation-free afterwards.
    const MachConfig &cfg = machs_.config();
    const bool gab_mode = cfg.use_gradient;
    const std::uint32_t count = frame.mabCount();
    frame_ = &frame;
    // vstream:allow(no-hotpath-alloc) first-frame sizing only; every
    // later resize is a no-op at the stream's fixed mab count
    gabs_.resize(gab_mode ? count : 0);
    block_ptrs_.resize(count);
    digests_.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (gab_mode) {
            frame.mab(i).gradientInto(gabs_[i]);
            block_ptrs_[i] = gabs_[i].bytes().data();
        } else {
            block_ptrs_[i] = frame.mab(i).bytes().data();
        }
    }
    digest32Batch(cfg.hash, block_ptrs_.data(), mab_bytes_, count,
                  digests_.data());
    if (cfg.co_mach) {
        auxes_.resize(count);
        auxDigest16Batch(block_ptrs_.data(), mab_bytes_, count,
                         auxes_.data());
    }
}

// vstream:hot
void
MachWriteback::writeMab(const Macroblock &mab, std::uint32_t idx, Tick now)
{
    vs_assert(layout_ != nullptr, "writeMab outside a frame");
    vs_assert(frame_ != nullptr && idx < frame_->mabCount() &&
                  &mab == &frame_->mab(idx),
              "writeMab must walk the frame given to beginFrame");
    const MachConfig &cfg = machs_.config();
    const bool gab_mode = cfg.use_gradient;

    // Representation stored in memory: the gab in gradient mode.
    // Both the gab bytes and the digests were precomputed for the
    // whole frame by beginFrame()'s batched pass.
    const Macroblock &repr = gab_mode ? gabs_[idx] : mab;
    const std::uint32_t digest = digests_[idx];
    const std::uint16_t aux = cfg.co_mach ? auxes_[idx] : 0;

    MabRecord &rec = layout_->record(idx);
    rec.digest = digest;
    rec.base = mab.base();

    const MachLookupResult hit =
        machs_.lookup(digest, aux, repr.bytes(), now);

    ++totals_.mabs;

    if (hit.hit) {
        // Match: store only the pointer (layout ii) or, for
        // inter-matches in layout iii, the digest.
        const bool as_digest =
            layout_kind_ == LayoutKind::kPointerDigest && hit.inter;
        rec.storage = as_digest
                          ? MabStorage::kInterDigest
                          : (hit.inter ? MabStorage::kInterPointer
                                       : MabStorage::kIntraPointer);
        rec.data_addr = hit.ptr;

        const std::uint32_t meta =
            (as_digest ? cfg.digest_bytes : cfg.pointer_bytes);
        meta_buf_.append(meta, now);
        frame_meta_bytes_ += meta;
        if (gab_mode) {
            base_buf_.append(cfg.base_bytes, now);
            frame_meta_bytes_ += cfg.base_bytes;
        }
        if (hit.inter) {
            ++totals_.inter_matches;
        } else {
            ++totals_.intra_matches;
        }
        last_tick_ = now;
        return;
    }

    // No match: append the block to the compacted data region.
    const Addr addr = slot_->data_base + frame_data_bytes_;
    std::uint32_t stored_bytes = repr.sizeBytes();
    if (use_dcc_) {
        const DccResult dcc = dccCompress(repr);
        totals_.dcc_saved_bytes +=
            repr.sizeBytes() > dcc.compressed_bytes
                ? repr.sizeBytes() - dcc.compressed_bytes
                : 0;
        stored_bytes = std::min(dcc.compressed_bytes, repr.sizeBytes());
    }
    fbm_.storeBlock(addr, repr.bytes());

    rec.storage = MabStorage::kUnique;
    rec.data_addr = addr;

    data_buf_.append(stored_bytes, now);
    frame_data_bytes_ += stored_bytes;
    totals_.data_bytes += stored_bytes;

    // The unique block also stores its pointer (Fig. 8a: 52 bytes).
    meta_buf_.append(cfg.pointer_bytes, now);
    frame_meta_bytes_ += cfg.pointer_bytes;
    if (gab_mode) {
        base_buf_.append(cfg.base_bytes, now);
        frame_meta_bytes_ += cfg.base_bytes;
    }

    machs_.insertUnique(digest, aux, addr, repr.bytes(),
                        hit.collision_detected);
    ++totals_.unique_blocks;
    last_tick_ = now;
}

void
MachWriteback::finishFrame(Tick now)
{
    vs_assert(layout_ != nullptr, "finishFrame outside a frame");
    const MachConfig &cfg = machs_.config();

    data_buf_.flush(now);
    meta_buf_.flush(now);
    base_buf_.flush(now);

    // The pointer-vs-digest bitmap (layout iii): 1 bit per mab.
    if (layout_kind_ == LayoutKind::kPointerDigest) {
        const std::uint32_t bitmap_bytes =
            (layout_->mabCount() + 7) / 8;
        mem_.write(slot_->meta_base + slot_->meta_capacity -
                       bitmap_bytes,
                   bitmap_bytes, Requester::kVideoDecoder, now);
        ++totals_.dram_write_requests;
        frame_meta_bytes_ += bitmap_bytes;

        // Dump the frozen MACH image for the display's MACH buffer,
        // built in place so a recycled layout reuses its capacity.
        // A dump never exceeds the MACH's entry count, so reserving
        // that bound up front makes the growth warmup-only instead of
        // chasing the largest dump seen so far.
        auto &dump = layout_->machDumpMutable();
        // vstream:allow(no-hotpath-alloc) bounded one-time reserve:
        // no-op once the recycled layout has reached cfg.entries
        dump.reserve(cfg.entries);
        dump.clear();
        machs_.current().forEachValid([&](const MachEntry &e) {
            dump.emplace_back(e.digest, e.ptr);
        });
        const std::uint64_t dump_bytes =
            dump.size() * (cfg.digest_bytes + cfg.pointer_bytes);
        if (dump_bytes > 0) {
            mem_.write(slot_->mach_dump_base,
                       static_cast<std::uint32_t>(dump_bytes),
                       Requester::kVideoDecoder, now);
            ++totals_.dram_write_requests;
        }
        layout_->setMachDumpBytes(dump_bytes);
        totals_.dump_bytes += dump_bytes;
    }

    totals_.meta_bytes += frame_meta_bytes_;
    layout_->setDataBytes(frame_data_bytes_);
    layout_->setMetaBytes(frame_meta_bytes_);

    layout_ = nullptr;
    slot_ = nullptr;
    frame_ = nullptr;
}

} // namespace vstream
