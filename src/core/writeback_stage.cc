#include "core/writeback_stage.hh"

#include "core/dcc.hh"
#include "sim/logging.hh"

namespace vstream
{

double
WritebackTotals::savings(std::uint32_t mab_bytes) const
{
    const auto baseline = baselineBytes(mab_bytes);
    if (baseline == 0) {
        return 0.0;
    }
    return 1.0 - static_cast<double>(totalBytes()) /
                     static_cast<double>(baseline);
}

// ---------------------------------------------------------------------
// LinearWriteback
// ---------------------------------------------------------------------

LinearWriteback::LinearWriteback(MemorySystem &mem, FrameBufferManager &fbm)
    : mem_(mem), fbm_(fbm),
      data_buf_("wb.linear.data", 64,
                [this](Addr addr, std::uint32_t size, Tick now) {
                    mem_.write(addr, size, Requester::kVideoDecoder, now);
                    ++totals_.dram_write_requests;
                })
{
}

void
LinearWriteback::beginFrame(const Frame &frame, BufferSlot &slot, Tick now)
{
    slot_ = &slot;
    mab_bytes_ = frame.mab(0).sizeBytes();
    layout_.emplace(frame.index(), LayoutKind::kLinear, frame.mabCount(),
                    mab_bytes_, /*gradient_mode=*/false);
    layout_->setDataBase(slot.data_base);
    layout_->setMetaBase(slot.meta_base);
    layout_->setSourceChecksum(frame.contentChecksum());
    data_buf_.rebase(slot.data_base);
    last_tick_ = now;
}

// vstream:hot
void
LinearWriteback::writeMab(const Macroblock &mab, std::uint32_t idx,
                          Tick now)
{
    vs_assert(layout_.has_value(), "writeMab outside a frame");
    const Addr addr =
        slot_->data_base + static_cast<Addr>(idx) * mab_bytes_;
    fbm_.storeBlock(addr, mab.bytes());

    MabRecord &rec = layout_->record(idx);
    rec.storage = MabStorage::kUnique;
    rec.data_addr = addr;
    rec.base = mab.base();

    data_buf_.append(mab.sizeBytes(), now);
    ++totals_.mabs;
    ++totals_.unique_blocks;
    totals_.data_bytes += mab.sizeBytes();
    last_tick_ = now;
}

FrameLayout
LinearWriteback::finishFrame(Tick now)
{
    vs_assert(layout_.has_value(), "finishFrame outside a frame");
    data_buf_.flush(now);
    layout_->setDataBytes(static_cast<std::uint64_t>(
                              layout_->mabCount()) *
                          mab_bytes_);
    layout_->setMetaBytes(0);
    FrameLayout out = std::move(*layout_);
    layout_.reset();
    slot_ = nullptr;
    return out;
}

// ---------------------------------------------------------------------
// MachWriteback
// ---------------------------------------------------------------------

MachWriteback::MachWriteback(MemorySystem &mem, FrameBufferManager &fbm,
                             MachArray &machs, LayoutKind layout_kind,
                             bool use_dcc)
    : mem_(mem), fbm_(fbm), machs_(machs), layout_kind_(layout_kind),
      use_dcc_(use_dcc),
      data_buf_("wb.mach.data", machs.config().coalesce_bytes,
                [this](Addr addr, std::uint32_t size, Tick now) {
                    mem_.write(addr, size, Requester::kVideoDecoder, now);
                    ++totals_.dram_write_requests;
                }),
      meta_buf_("wb.mach.meta", machs.config().coalesce_bytes,
                [this](Addr addr, std::uint32_t size, Tick now) {
                    mem_.write(addr, size, Requester::kVideoDecoder, now);
                    ++totals_.dram_write_requests;
                }),
      base_buf_("wb.mach.base", machs.config().coalesce_bytes,
                [this](Addr addr, std::uint32_t size, Tick now) {
                    mem_.write(addr, size, Requester::kVideoDecoder, now);
                    ++totals_.dram_write_requests;
                })
{
    vs_assert(layout_kind_ != LayoutKind::kLinear,
              "MachWriteback requires a pointer-based layout");
}

void
MachWriteback::beginFrame(const Frame &frame, BufferSlot &slot, Tick now)
{
    slot_ = &slot;
    mab_bytes_ = frame.mab(0).sizeBytes();
    machs_.beginFrame();
    layout_.emplace(frame.index(), layout_kind_, frame.mabCount(),
                    mab_bytes_, machs_.config().use_gradient);
    layout_->setDataBase(slot.data_base);
    layout_->setMetaBase(slot.meta_base);
    layout_->setMachDumpBase(slot.mach_dump_base);
    layout_->setSourceChecksum(frame.contentChecksum());

    data_buf_.rebase(slot.data_base);
    // Pointer/digest stream first, bases behind it (both live in the
    // metadata region; exact packing is immaterial to the model).
    meta_buf_.rebase(slot.meta_base);
    base_buf_.rebase(slot.meta_base +
                     static_cast<Addr>(frame.mabCount()) * 5);

    frame_data_bytes_ = 0;
    frame_meta_bytes_ = 0;
    last_tick_ = now;
}

// vstream:hot
void
MachWriteback::writeMab(const Macroblock &mab, std::uint32_t idx, Tick now)
{
    vs_assert(layout_.has_value(), "writeMab outside a frame");
    const MachConfig &cfg = machs_.config();
    const bool gab_mode = cfg.use_gradient;

    // Representation stored in memory: the gab in gradient mode.
    // The scratch block is reused across mabs, so the per-mab copy
    // the old `Macroblock repr = mab.gradient()` paid is gone.
    if (gab_mode) {
        mab.gradientInto(gab_scratch_);
    }
    const Macroblock &repr = gab_mode ? gab_scratch_ : mab;
    const std::uint32_t digest = repr.digest(cfg.hash);
    const std::uint16_t aux = cfg.co_mach ? repr.auxDigest() : 0;

    MabRecord &rec = layout_->record(idx);
    rec.digest = digest;
    rec.base = mab.base();

    const MachLookupResult hit =
        machs_.lookup(digest, aux, repr.bytes(), now);

    ++totals_.mabs;

    if (hit.hit) {
        // Match: store only the pointer (layout ii) or, for
        // inter-matches in layout iii, the digest.
        const bool as_digest =
            layout_kind_ == LayoutKind::kPointerDigest && hit.inter;
        rec.storage = as_digest
                          ? MabStorage::kInterDigest
                          : (hit.inter ? MabStorage::kInterPointer
                                       : MabStorage::kIntraPointer);
        rec.data_addr = hit.ptr;

        const std::uint32_t meta =
            (as_digest ? cfg.digest_bytes : cfg.pointer_bytes);
        meta_buf_.append(meta, now);
        frame_meta_bytes_ += meta;
        if (gab_mode) {
            base_buf_.append(cfg.base_bytes, now);
            frame_meta_bytes_ += cfg.base_bytes;
        }
        if (hit.inter) {
            ++totals_.inter_matches;
        } else {
            ++totals_.intra_matches;
        }
        last_tick_ = now;
        return;
    }

    // No match: append the block to the compacted data region.
    const Addr addr = slot_->data_base + frame_data_bytes_;
    std::uint32_t stored_bytes = repr.sizeBytes();
    if (use_dcc_) {
        const DccResult dcc = dccCompress(repr);
        totals_.dcc_saved_bytes +=
            repr.sizeBytes() > dcc.compressed_bytes
                ? repr.sizeBytes() - dcc.compressed_bytes
                : 0;
        stored_bytes = std::min(dcc.compressed_bytes, repr.sizeBytes());
    }
    fbm_.storeBlock(addr, repr.bytes());

    rec.storage = MabStorage::kUnique;
    rec.data_addr = addr;

    data_buf_.append(stored_bytes, now);
    frame_data_bytes_ += stored_bytes;
    totals_.data_bytes += stored_bytes;

    // The unique block also stores its pointer (Fig. 8a: 52 bytes).
    meta_buf_.append(cfg.pointer_bytes, now);
    frame_meta_bytes_ += cfg.pointer_bytes;
    if (gab_mode) {
        base_buf_.append(cfg.base_bytes, now);
        frame_meta_bytes_ += cfg.base_bytes;
    }

    machs_.insertUnique(digest, aux, addr, repr.bytes(),
                        hit.collision_detected);
    ++totals_.unique_blocks;
    last_tick_ = now;
}

FrameLayout
MachWriteback::finishFrame(Tick now)
{
    vs_assert(layout_.has_value(), "finishFrame outside a frame");
    const MachConfig &cfg = machs_.config();

    data_buf_.flush(now);
    meta_buf_.flush(now);
    base_buf_.flush(now);

    // The pointer-vs-digest bitmap (layout iii): 1 bit per mab.
    if (layout_kind_ == LayoutKind::kPointerDigest) {
        const std::uint32_t bitmap_bytes =
            (layout_->mabCount() + 7) / 8;
        mem_.write(slot_->meta_base + slot_->meta_capacity -
                       bitmap_bytes,
                   bitmap_bytes, Requester::kVideoDecoder, now);
        ++totals_.dram_write_requests;
        frame_meta_bytes_ += bitmap_bytes;

        // Dump the frozen MACH image for the display's MACH buffer.
        std::vector<std::pair<std::uint32_t, Addr>> dump;
        for (const MachEntry *e : machs_.current().validEntries()) {
            dump.emplace_back(e->digest, e->ptr);
        }
        const std::uint64_t dump_bytes =
            dump.size() * (cfg.digest_bytes + cfg.pointer_bytes);
        if (dump_bytes > 0) {
            mem_.write(slot_->mach_dump_base,
                       static_cast<std::uint32_t>(dump_bytes),
                       Requester::kVideoDecoder, now);
            ++totals_.dram_write_requests;
        }
        layout_->setMachDump(std::move(dump));
        layout_->setMachDumpBytes(dump_bytes);
        totals_.dump_bytes += dump_bytes;
    }

    totals_.meta_bytes += frame_meta_bytes_;
    layout_->setDataBytes(frame_data_bytes_);
    layout_->setMetaBytes(frame_meta_bytes_);

    FrameLayout out = std::move(*layout_);
    layout_.reset();
    slot_ = nullptr;
    return out;
}

} // namespace vstream
