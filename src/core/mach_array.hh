/**
 * @file
 * The array of per-frame MACHs held by the video decoder.
 *
 * The decoder keeps the MACH of the frame being decoded plus the
 * frozen MACHs of the previous num_machs-1 frames; a lookup searches
 * all of them (and CO-MACH when enabled).  A hit in the current
 * frame's MACH is an intra-match, a hit in an older MACH an
 * inter-match - the distinction decides whether the frame-buffer
 * layout stores a pointer or a digest (Sec. 5.1).
 */

#ifndef VSTREAM_CORE_MACH_ARRAY_HH
#define VSTREAM_CORE_MACH_ARRAY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "core/co_mach.hh"
#include "core/flat_table.hh"
#include "core/mach_cache.hh"
#include "sim/ticks.hh"

namespace vstream
{

class FaultInjector;
class StatsRegistry;

/**
 * Observer of unique-block materializations (insertUnique calls).
 *
 * Receives the *original* digest/aux as computed by the writeback
 * stage - digest-collision injection forges only the lookup path, so
 * an observer sees ground truth even under fault injection.  Used by
 * the shared dedup tier (serve/shared_mach.hh) to record which
 * distinct blocks a session actually wrote to DRAM.
 */
using MachWriteObserver =
    std::function<void(std::uint32_t digest, std::uint16_t aux,
                       const std::vector<std::uint8_t> &truth)>;

/** Combined outcome of searching all MACHs. */
struct MachLookupResult
{
    bool hit = false;
    /** Hit in a previous frame's MACH (else the current frame's). */
    bool inter = false;
    /** Age of the owning MACH: 0 = current frame, 1 = previous, ... */
    std::uint32_t frame_age = 0;
    Addr ptr = 0;
    bool collision_detected = false;
    bool collision_undetected = false;
};

/** Running statistics of the MACH array. */
struct MachStats
{
    std::uint64_t lookups = 0;
    std::uint64_t intra_hits = 0;
    std::uint64_t inter_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t collisions_detected = 0;
    std::uint64_t collisions_undetected = 0;
    std::uint64_t inserts = 0;
    /** Injected digest collisions that produced a wrong-block hit. */
    std::uint64_t injected_collisions = 0;
    /** Hits demoted to misses by the verify-on-hit byte compare. */
    std::uint64_t false_hits = 0;
    /** Lookups answered "miss" because the array was bypassed (the
     * circuit-breaker fallback to full 48 B unique writes). */
    std::uint64_t bypassed_lookups = 0;

    std::uint64_t hits() const { return intra_hits + inter_hits; }
    double hitRate() const
    {
        return lookups ? static_cast<double>(hits()) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** Current + historical MACHs, plus CO-MACH. */
class MachArray
{
  public:
    explicit MachArray(const MachConfig &cfg);

    /**
     * Start a new frame: freeze the current MACH into the history
     * (dropping the oldest beyond num_machs-1) and clear CO-MACH.
     */
    void beginFrame();

    /**
     * Search every cache for @p digest.
     *
     * @param now simulated time, the fault injector's opportunity
     *        clock for FaultClass::kDigestCollision.
     */
    MachLookupResult lookup(std::uint32_t digest, std::uint16_t aux,
                            const std::vector<std::uint8_t> &truth,
                            Tick now = 0);

    /** Arm digest-collision injection (nullptr disables it). */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /**
     * Bypass the array: every lookup misses (counted separately) and
     * inserts are dropped, so the decoder writes every block as a
     * full 48 B unique - the circuit breaker's safe fallback when
     * verification keeps demoting hits.  Re-enabling resumes lookups
     * against whatever survived in the caches.
     */
    void setBypass(bool on) { bypass_ = on; }
    bool bypassed() const { return bypass_; }

    /** Attach @p obs to every future insertUnique() (empty function
     * detaches).  Purely observational: the array's own behaviour
     * and stats are unchanged. */
    void setWriteObserver(MachWriteObserver obs)
    {
        write_observer_ = std::move(obs);
    }

    /**
     * Record a freshly written unique block.
     *
     * Inserts into the current MACH, or into CO-MACH when the lookup
     * that preceded this call detected a digest collision.
     */
    void insertUnique(std::uint32_t digest, std::uint16_t aux, Addr ptr,
                      const std::vector<std::uint8_t> &truth,
                      bool collided);

    /** The MACH of the frame being decoded. */
    const MachCache &current() const;

    /** Number of frozen history MACHs currently held. */
    std::uint32_t historyDepth() const { return hist_count_; }

    /** Frozen MACH @p age frames old (1 = previous frame). */
    const MachCache &historyAt(std::uint32_t age) const;

    /** Metadata image size of the current MACH when dumped. */
    std::uint64_t currentDumpBytes() const;

    const MachStats &stats() const { return stats_; }

    /** Zero every counter registered by regStats(); the array
     * contents (current and frozen MACHs) are untouched. */
    void resetStats() { stats_ = MachStats{}; }

    const MachConfig &config() const { return cfg_; }
    std::uint64_t coMachInserts() const
    {
        return co_mach_ ? co_mach_->insertCount() : 0;
    }

    /** Register lookup/hit/collision stats under @p prefix. */
    void regStats(StatsRegistry &r, const std::string &prefix) const;

    /** Matches per digest (Fig. 9b's "top digests" distribution). */
    const FlatMap<std::uint32_t, std::uint64_t> &
    matchCounts() const
    {
        return match_counts_;
    }

    /**
     * Shares of total matches contributed by the top @p k digests,
     * descending (Fig. 9b's x-axis).
     */
    std::vector<double> topMatchShares(std::size_t k) const;

  private:
    MachConfig cfg_;
    FlatMap<std::uint32_t, std::uint64_t> match_counts_;
    /**
     * Fixed ring of at most num_machs caches: ring_[cur_] is the
     * frame being decoded and age-a history lives at
     * (cur_ - a) mod ring_.size().  Advancing a frame recycles the
     * aged-out cache in place, so frame boundaries perform zero heap
     * allocation once the ring is full.
     */
    std::vector<MachCache> ring_;
    std::size_t cur_ = 0;
    std::uint32_t hist_count_ = 0;
    std::unique_ptr<CoMach> co_mach_;
    MachStats stats_;
    FaultInjector *faults_ = nullptr;
    MachWriteObserver write_observer_;
    bool bypass_ = false;
    /** Snapshot of a previously inserted block whose digest a later
     * lookup can be forged to collide with. */
    bool have_collider_ = false;
    std::uint32_t collider_digest_ = 0;
    std::uint16_t collider_aux_ = 0;
    std::vector<std::uint8_t> collider_truth_;
};

} // namespace vstream

#endif // VSTREAM_CORE_MACH_ARRAY_HH
