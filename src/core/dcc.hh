/**
 * @file
 * Delta Color Compression (DCC) model.
 *
 * DCC is the commercial intra-block compressor the paper compares
 * against (Sec. 6.2): within one block, pixels are stored as a base
 * colour plus per-channel deltas packed at the minimum bit width.
 * DCC is orthogonal to MACH (intra-block vs inter-block reuse), so
 * the combined GAB+DCC scheme compresses only the unique blocks MACH
 * actually writes.
 */

#ifndef VSTREAM_CORE_DCC_HH
#define VSTREAM_CORE_DCC_HH

#include <cstdint>

#include "video/macroblock.hh"

namespace vstream
{

/** Result of compressing one block. */
struct DccResult
{
    /** Bytes after compression (<= uncompressed + 1 B header). */
    std::uint32_t compressed_bytes = 0;
    /** False when the block had to be stored raw. */
    bool compressed = false;

    double
    ratio(std::uint32_t raw_bytes) const
    {
        return raw_bytes ? static_cast<double>(compressed_bytes) /
                               static_cast<double>(raw_bytes)
                         : 1.0;
    }
};

/**
 * Compress @p mab with base+delta packing.
 *
 * Uses the block's first pixel as the base; each remaining pixel
 * stores three signed deltas packed at the per-channel maximum bit
 * width.  A 1-byte header records the widths.  Falls back to raw
 * storage when packing would not shrink the block.
 */
DccResult dccCompress(const Macroblock &mab);

} // namespace vstream

#endif // VSTREAM_CORE_DCC_HH
