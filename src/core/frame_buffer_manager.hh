/**
 * @file
 * Frame-buffer pool and simulated block store.
 *
 * Allocates per-frame buffer slots (metadata + data regions) out of
 * simulated DRAM, recycles them once a frame is both displayed and
 * outside the MACH reference window, and tracks the peak number of
 * simultaneously live buffers - the quantity behind the paper's
 * memory-capacity discussion (5.3x for 16-frame batching, Fig. 12a's
 * extra-buffer counts).
 *
 * The manager also plays the role of "what the bytes in DRAM are":
 * block contents written by the decoder are stored here so the
 * display model can reconstruct frames and the test suite can verify
 * losslessness end to end.
 */

#ifndef VSTREAM_CORE_FRAME_BUFFER_MANAGER_HH
#define VSTREAM_CORE_FRAME_BUFFER_MANAGER_HH

#include <cstdint>
#include <vector>

#include "core/flat_table.hh"
#include "core/surface_pool.hh"
#include "mem/memory_system.hh"

namespace vstream
{

/**
 * View of block bytes stored in a slot's arena.
 *
 * Valid until the next storeBlock() into the same slot (arena growth
 * may move the bytes); consume it before writing again.
 */
struct StoredBlock
{
    const std::uint8_t *data = nullptr;
    std::uint32_t size = 0;

    explicit operator bool() const { return data != nullptr; }

    std::vector<std::uint8_t>
    toVector() const
    {
        return std::vector<std::uint8_t>(data, data + size);
    }
};

/** One reusable frame-buffer slot. */
struct BufferSlot
{
    Addr meta_base = 0;
    Addr data_base = 0;
    Addr mach_dump_base = 0;
    std::uint64_t meta_capacity = 0;
    std::uint64_t data_capacity = 0;
    std::uint64_t mach_dump_capacity = 0;
    bool in_use = false;
    std::uint64_t frame_index = 0;
    /**
     * Simulated contents: blocks append into one frame-sized arena
     * and block_index maps the block address to (offset << 32 | size)
     * within it.  Replaces the old per-block
     * unordered_map<Addr, vector<uint8_t>> whose every store paid a
     * node plus a vector allocation.
     */
    std::vector<std::uint8_t> arena;
    FlatMap<Addr, std::uint64_t> block_index;
};

/** Pool of frame buffers plus the simulated block store. */
class FrameBufferManager
{
  public:
    /**
     * @param mem             owner of the simulated address space
     * @param mab_count       mabs per frame
     * @param mab_bytes       decoded bytes per mab
     * @param mach_dump_bytes capacity reserved for a MACH dump image
     */
    FrameBufferManager(MemorySystem &mem, std::uint32_t mab_count,
                       std::uint32_t mab_bytes,
                       std::uint64_t mach_dump_bytes);

    /** Acquire a slot for @p frame_index (recycles a free slot or
     * grows the pool). */
    BufferSlot &acquire(std::uint64_t frame_index);

    /** Release the slot holding @p frame_index (no-op if absent). */
    void release(std::uint64_t frame_index);

    /** Slot currently holding @p frame_index, or nullptr. */
    BufferSlot *find(std::uint64_t frame_index);
    const BufferSlot *find(std::uint64_t frame_index) const;

    /** Record block bytes at @p addr (must fall inside some slot). */
    void storeBlock(Addr addr, const std::vector<std::uint8_t> &bytes);

    /** Fetch block bytes at @p addr; empty view when nothing stored. */
    StoredBlock loadBlock(Addr addr) const;

    /** Slots ever allocated (== peak simultaneous buffers). */
    std::uint32_t slotsAllocated() const
    {
        return static_cast<std::uint32_t>(slots_.allocated());
    }

    /** Slots currently holding live frames. */
    std::uint32_t slotsInUse() const;

    /** Total DRAM footprint of the pool, bytes. */
    std::uint64_t poolBytes() const;

    /** Per-slot worst-case decoded size (the data region size). */
    std::uint64_t dataCapacity() const { return data_capacity_; }

    /** The underlying slot pool's counters (recycle visibility). */
    const SurfacePoolStats &poolStats() const { return slots_.stats(); }

  private:
    BufferSlot *slotContaining(Addr addr);
    const BufferSlot *slotContaining(Addr addr) const;

    MemorySystem &mem_;
    std::uint64_t meta_capacity_;
    std::uint64_t data_capacity_;
    std::uint64_t mach_dump_capacity_;
    /**
     * Slot-stable recycled pool; lowest-index-first acquisition
     * preserves the DRAM address assignment order the simulated
     * timing (and golden outputs) depend on.
     */
    SurfacePool<BufferSlot> slots_{"fbm.slots"};
};

} // namespace vstream

#endif // VSTREAM_CORE_FRAME_BUFFER_MANAGER_HH
